/**
 * @file
 * Shared workload elements implementation.
 */
#include "workloads/elements.hpp"

#include "common/log.hpp"

namespace evrsim {
namespace workloads {

RenderState
state2D(FragmentProgram program, int texture, BlendMode blend)
{
    RenderState s;
    s.depth_write = false;
    s.depth_test = false;
    s.cull_backface = false;
    s.blend = blend;
    s.program = program;
    s.texture = texture;
    return s;
}

RenderState
state3D(FragmentProgram program, int texture, bool cull)
{
    RenderState s;
    s.depth_write = true;
    s.depth_test = true;
    s.cull_backface = cull;
    s.blend = BlendMode::Opaque;
    s.program = program;
    s.texture = texture;
    return s;
}

RenderState
state3DTranslucent(FragmentProgram program, int texture)
{
    RenderState s;
    s.depth_write = false; // translucent primitives are NWOZ by definition
    s.depth_test = true;
    s.cull_backface = false;
    s.blend = BlendMode::Alpha;
    s.program = program;
    s.texture = texture;
    return s;
}

WorkloadBase::WorkloadBase(Info info, int width, int height,
                           std::uint64_t seed)
    : info_(std::move(info)), width_(width), height_(height), rng_root_(seed)
{
    EVRSIM_ASSERT(width > 0 && height > 0);
}

void
WorkloadBase::setup(GpuSimulator &sim)
{
    for (Mesh &m : meshes_)
        sim.uploadMesh(m);
    for (Texture &t : textures_)
        sim.registerTexture(t);
}

Mesh *
WorkloadBase::addMesh(Mesh mesh)
{
    meshes_.push_back(std::move(mesh));
    return &meshes_.back();
}

int
WorkloadBase::addTexture(Texture texture)
{
    textures_.push_back(std::move(texture));
    return static_cast<int>(textures_.size()) - 1;
}

Scene
WorkloadBase::begin2D() const
{
    Scene scene;
    setCamera2D(scene, width_, height_);
    for (const Texture &t : textures_)
        scene.textures.push_back(&t);
    return scene;
}

Scene
WorkloadBase::begin3D(const Vec3 &eye, const Vec3 &at, float fovy_deg) const
{
    Scene scene;
    setCamera3D(scene, eye, at, fovy_deg,
                screenW() / screenH());
    for (const Texture &t : textures_)
        scene.textures.push_back(&t);
    return scene;
}

// ---------------------------------------------------------------- Hud --

Hud::Hud(WorkloadBase &owner, int width, int height, int top_px,
         int bottom_px, int widgets, std::uint64_t seed)
    : width_(width), height_(height), top_px_(top_px), bottom_px_(bottom_px)
{
    WorkloadBase &o = owner;

    quad_ = o.addMesh(meshes::quad({1, 1, 1, 1}));
    texture_ = o.addTexture(Texture(TextureKind::Stripes, 64,
                                    {0.25f, 0.27f, 0.33f, 1.0f},
                                    {0.18f, 0.20f, 0.25f, 1.0f}, seed, 8));

    Rng rng(seed);
    for (int i = 0; i < widgets; ++i) {
        Widget w;
        bool on_top = top_px_ > 0 && (bottom_px_ == 0 || (i & 1));
        float bar_h = on_top ? top_px_ : bottom_px_;
        w.h = bar_h * rng.nextFloat(0.5f, 0.8f);
        w.w = w.h * rng.nextFloat(1.0f, 3.0f);
        w.x = rng.nextFloat(w.w, width - w.w);
        w.y = on_top ? bar_h * 0.5f : height - bar_h * 0.5f;
        w.tint = {rng.nextFloat(0.5f, 1.0f), rng.nextFloat(0.5f, 1.0f),
                  rng.nextFloat(0.5f, 1.0f), 1.0f};
        widgets_.push_back(w);
    }
}

float
Hud::coverage() const
{
    return static_cast<float>(top_px_ + bottom_px_) / height_;
}

void
Hud::submit(Scene &scene, int frame, bool dynamic) const
{
    float w = static_cast<float>(width_);

    if (top_px_ > 0) {
        scene.submit(quad_,
                     anim::spriteAt(w * 0.5f, top_px_ * 0.5f, w,
                                    static_cast<float>(top_px_), 0.02f),
                     state2D(FragmentProgram::Textured, texture_))
            .screen_space = true;
    }
    if (bottom_px_ > 0) {
        scene.submit(quad_,
                     anim::spriteAt(w * 0.5f, height_ - bottom_px_ * 0.5f, w,
                                    static_cast<float>(bottom_px_), 0.02f),
                     state2D(FragmentProgram::Textured, texture_))
            .screen_space = true;
    }

    for (std::size_t i = 0; i < widgets_.size(); ++i) {
        const Widget &wd = widgets_[i];
        DrawCommand &cmd = scene.submit(
            quad_, anim::spriteAt(wd.x, wd.y, wd.w, wd.h, 0.01f),
            state2D(FragmentProgram::Flat));
        cmd.screen_space = true;
        cmd.tint = wd.tint;
        if (dynamic && i == 0) {
            // Score counter: its color bytes change every frame, keeping
            // its tiles non-redundant for plain RE.
            cmd.tint.x = 0.5f + 0.5f * ((frame % 100) / 100.0f);
        }
    }
}

// -------------------------------------------------------- SpriteField --

SpriteField::SpriteField(WorkloadBase &owner, int width, int height,
                         const Params &params, std::uint64_t seed)
    : width_(width), height_(height), params_(params)
{
    WorkloadBase &o = owner;

    Rng rng(seed);

    bg_texture_ = o.addTexture(Texture(TextureKind::Noise, 256,
                                       {0.10f, 0.22f, 0.16f, 1.0f},
                                       {0.20f, 0.38f, 0.28f, 1.0f},
                                       seed ^ 0xbeef, 32));
    sprite_texture_ = o.addTexture(Texture(TextureKind::Checker, 64,
                                           {0.9f, 0.7f, 0.3f, 1.0f},
                                           {0.7f, 0.3f, 0.2f, 1.0f},
                                           seed ^ 0xcafe, 4));

    background_ = o.addMesh(meshes::quad({1, 1, 1, 1}));
    sprite_quad_ = o.addMesh(meshes::quad({1, 1, 1, 1}));

    // Bake the static sprites into one mesh (one draw command), placed
    // in screen coordinates directly.
    float cx = width * 0.5f, cy = height * 0.5f;
    float half_w = width * 0.5f * params_.spread;
    float half_h = height * 0.5f * params_.spread;

    Mesh baked;
    for (int i = 0; i < params_.static_sprites; ++i) {
        float size = rng.nextFloat(params_.min_size, params_.max_size);
        float x = rng.nextFloat(cx - half_w, cx + half_w);
        float y = rng.nextFloat(cy - half_h, cy + half_h);
        Vec4 tint = {rng.nextFloat(0.4f, 1.0f), rng.nextFloat(0.4f, 1.0f),
                     rng.nextFloat(0.4f, 1.0f), 1.0f};
        Mesh s = meshes::quad(tint);
        for (auto &v : s.vertices) {
            v.position.x = v.position.x * size + x;
            v.position.y = v.position.y * size + y;
            v.position.z = 0.5f;
        }
        baked.append(s);
    }
    static_batch_ = o.addMesh(std::move(baked));

    for (int i = 0; i < params_.moving_sprites; ++i) {
        Mover m;
        m.size = rng.nextFloat(params_.min_size, params_.max_size);
        m.base_x = rng.nextFloat(cx - half_w, cx + half_w);
        m.base_y = rng.nextFloat(cy - half_h, cy + half_h);
        m.phase = rng.nextFloat(0.0f, 6.28f);
        m.z = 0.4f;
        m.tint = {rng.nextFloat(0.5f, 1.0f), rng.nextFloat(0.5f, 1.0f),
                  rng.nextFloat(0.5f, 1.0f),
                  params_.translucent_movers ? 0.6f : 1.0f};
        movers_.push_back(m);
    }
}

void
SpriteField::submit(Scene &scene, int frame) const
{
    float w = static_cast<float>(width_), h = static_cast<float>(height_);

    // Back-to-front painter's order: background, static layer, movers.
    scene.submit(background_, anim::spriteAt(w * 0.5f, h * 0.5f, w, h, 0.9f),
                 state2D(FragmentProgram::Textured, bg_texture_));

    scene.submit(static_batch_, Mat4::identity(),
                 state2D(FragmentProgram::TexturedTint, sprite_texture_));

    for (const Mover &m : movers_) {
        float x = anim::oscillate(m.base_x, params_.speed, params_.period,
                                  frame, m.phase);
        float y = anim::oscillate(m.base_y, params_.speed * 0.6f,
                                  params_.period * 1.3f, frame,
                                  m.phase * 1.7f);
        DrawCommand &cmd = scene.submit(
            sprite_quad_, anim::spriteAt(x, y, m.size, m.size, m.z),
            state2D(FragmentProgram::TexturedTint, sprite_texture_,
                    params_.translucent_movers ? BlendMode::Alpha
                                               : BlendMode::Opaque));
        cmd.tint = m.tint;
    }
}

// ------------------------------------------------------ Environment3D --

Environment3D::Environment3D(WorkloadBase &owner, const Params &params,
                             std::uint64_t seed)
{
    WorkloadBase &o = owner;

    Rng rng(seed);

    terrain_texture_ = o.addTexture(Texture(TextureKind::Noise, 256,
                                            {0.25f, 0.30f, 0.18f, 1.0f},
                                            {0.45f, 0.42f, 0.30f, 1.0f},
                                            seed ^ 0xd00d, 24));

    // Far backdrop: an inward-facing sky sphere around the whole scene.
    // It guarantees every tile is covered by opaque WOZ geometry from
    // any camera position/direction, so each tile has a meaningful
    // Z_far (the sphere builder's pole shading gives a sky gradient).
    backdrop_ = o.addMesh(meshes::sphere(8, 12, {0.30f, 0.42f, 0.62f, 1.0f}));

    terrain_ = o.addMesh(meshes::grid(params.terrain_res, params.terrain_res,
                                      {1, 1, 1, 1}, 0.02f, seed ^ 0xfeed));

    for (int i = 0; i < params.props; ++i) {
        Vec4 tint = {rng.nextFloat(0.3f, 0.9f), rng.nextFloat(0.3f, 0.9f),
                     rng.nextFloat(0.3f, 0.9f), 1.0f};
        const Mesh *mesh = rng.nextBool(0.6f)
                               ? o.addMesh(meshes::box(tint))
                               : o.addMesh(meshes::sphere(6, 8, tint));
        float s = rng.nextFloat(1.0f, 4.0f);
        Mat4 xf = Mat4::translate({rng.nextFloat(-params.area, params.area),
                                   s * 0.5f,
                                   rng.nextFloat(-params.area, params.area)}) *
                  Mat4::rotateY(rng.nextFloat(0.0f, 6.28f)) *
                  Mat4::scale({s, s, s});
        props_.emplace_back(mesh, xf);
    }
}

void
Environment3D::submit(Scene &scene) const
{
    // Far-to-near submission order (sky, ground, props): the
    // overshading-prone order the reordering optimization targets.
    // Sky radius 75: inside the cameras' far plane (100), outside every
    // prop and camera orbit, so it is visible wherever nothing else is.
    scene.submit(backdrop_, Mat4::scale({150.0f, 150.0f, 150.0f}),
                 state3D(FragmentProgram::Flat, -1, false));

    scene.submit(terrain_,
                 Mat4::scale({90.0f, 1.0f, 90.0f}) *
                     Mat4::rotateX(-1.57079632679f),
                 state3D(FragmentProgram::Textured, terrain_texture_, false));

    for (const auto &[mesh, xf] : props_)
        scene.submit(mesh, xf, state3D(FragmentProgram::Flat));
}

// -------------------------------------------------------- ActorGroup3D --

ActorGroup3D::ActorGroup3D(WorkloadBase &owner, const Params &params,
                           std::uint64_t seed)
{
    WorkloadBase &o = owner;

    Rng rng(seed);
    for (int i = 0; i < params.actors; ++i) {
        Actor a;
        Vec4 tint = {rng.nextFloat(0.4f, 1.0f), rng.nextFloat(0.4f, 1.0f),
                     rng.nextFloat(0.4f, 1.0f), 1.0f};
        a.mesh = o.addMesh(meshes::character(seed + i * 977, tint));
        a.phase = rng.nextFloat(0.0f, 6.28f);
        a.radius = params.radius * rng.nextFloat(0.4f, 1.0f);
        a.period = params.period * rng.nextFloat(0.7f, 1.4f);
        a.scale = params.scale * rng.nextFloat(0.7f, 1.3f);
        a.center = {rng.nextFloat(-4.0f, 4.0f), 0.0f,
                    rng.nextFloat(-4.0f, 4.0f)};
        actors_.push_back(a);
    }
}

void
ActorGroup3D::submit(Scene &scene, int frame) const
{
    for (const Actor &a : actors_) {
        Vec3 pos = anim::orbitXZ(a.center, a.radius, a.period, frame,
                                 a.phase);
        float heading = anim::spin(a.period, frame, a.phase) + 1.5708f;
        DrawCommand &cmd = scene.submit(
            a.mesh,
            Mat4::translate(pos) * Mat4::rotateY(-heading) *
                Mat4::scale({a.scale, a.scale, a.scale}),
            state3D(FragmentProgram::Flat));
        // Subtle pulsing tint: actor attribute bytes change every frame.
        cmd.tint.x = 0.9f + 0.1f * anim::oscillate(0.0f, 1.0f, 47.0f, frame,
                                                   a.phase);
    }
}

} // namespace workloads
} // namespace evrsim
