/**
 * @file
 * Workload family implementations.
 */
#include "workloads/suite.hpp"

namespace evrsim {
namespace workloads {

// -------------------------------------------------------- SpriteGame2D --

SpriteGame2D::SpriteGame2D(Info info, int width, int height,
                           std::uint64_t seed, const Params &params)
    : WorkloadBase(std::move(info), width, height, seed),
      params_(params),
      field_(*this, width, height, params.field, seed ^ 0x5157)
{
    if (params_.hud_top > 0 || params_.hud_bottom > 0) {
        hud_.emplace(*this, width, height, params_.hud_top,
                     params_.hud_bottom, params_.hud_widgets, seed ^ 0x4d4d);
    }
    if (params_.popup_period > 0) {
        popup_panel_ = addMesh(meshes::quad({0.85f, 0.82f, 0.75f, 1.0f}));
        popup_texture_ = addTexture(Texture(TextureKind::Gradient, 64,
                                            {0.9f, 0.88f, 0.8f, 1.0f},
                                            {0.7f, 0.66f, 0.6f, 1.0f},
                                            seed ^ 0x9999));
        // Buttons baked into one mesh laid out in unit-popup space.
        Mesh content;
        Rng rng = elementRng(0xb7770);
        for (int i = 0; i < 4; ++i) {
            Mesh b = meshes::quad({rng.nextFloat(0.3f, 0.9f),
                                   rng.nextFloat(0.3f, 0.9f),
                                   rng.nextFloat(0.3f, 0.9f), 1.0f});
            for (auto &v : b.vertices) {
                v.position.x = v.position.x * 0.7f;
                v.position.y = v.position.y * 0.16f - 0.33f + i * 0.22f;
            }
            content.append(b);
        }
        popup_content_ = addMesh(std::move(content));
    }
}

bool
SpriteGame2D::popupVisible(int frame) const
{
    // The popup is up two thirds of the time (menus/shops stay open for
    // a while): one period closed, two periods open.
    return params_.popup_period > 0 &&
           (frame / params_.popup_period) % 3 != 0;
}

Scene
SpriteGame2D::frame(int index)
{
    Scene scene = begin2D();
    field_.submit(scene, index);

    if (popupVisible(index)) {
        // A modal menu covering the centre of the screen: the sprites
        // underneath keep animating but are fully occluded.
        float pw = screenW() * params_.popup_coverage;
        float ph = screenH() * params_.popup_coverage;
        Mat4 at = anim::spriteAt(screenW() * 0.5f, screenH() * 0.5f, pw, ph,
                                 0.1f);
        scene.submit(popup_panel_, at,
                     state2D(FragmentProgram::Textured, popup_texture_));
        scene.submit(popup_content_, at, state2D(FragmentProgram::Flat));
    }

    if (hud_)
        hud_->submit(scene, index, params_.dynamic_hud);
    return scene;
}

// --------------------------------------------------------- BoardGame2D --

BoardGame2D::BoardGame2D(Info info, int width, int height,
                         std::uint64_t seed, const Params &params)
    : WorkloadBase(std::move(info), width, height, seed), params_(params)
{
    bg_texture_ = addTexture(Texture(TextureKind::Gradient, 128,
                                     {0.15f, 0.10f, 0.25f, 1.0f},
                                     {0.30f, 0.15f, 0.35f, 1.0f},
                                     seed ^ 0xb6));
    cell_texture_ = addTexture(Texture(TextureKind::Checker, 32,
                                       {0.95f, 0.9f, 0.85f, 1.0f},
                                       {0.8f, 0.75f, 0.65f, 1.0f},
                                       seed ^ 0xce11, 2));
    background_ = addMesh(meshes::quad({1, 1, 1, 1}));
    cell_quad_ = addMesh(meshes::quad({1, 1, 1, 1}));

    // Lay the board out in the central area between the HUD bars.
    Rng rng = elementRng(0xb0a2d);
    float top = static_cast<float>(params_.hud_top);
    float usable_h = height - top - params_.hud_bottom;
    float cell = std::min(static_cast<float>(width) / (params_.cols + 1),
                          usable_h / (params_.rows + 1));
    float x0 = (width - cell * params_.cols) * 0.5f + cell * 0.5f;
    float y0 = top + (usable_h - cell * params_.rows) * 0.5f + cell * 0.5f;

    for (int r = 0; r < params_.rows; ++r) {
        for (int c = 0; c < params_.cols; ++c) {
            Cell cl;
            cl.x = x0 + c * cell;
            cl.y = y0 + r * cell;
            cl.size = cell * 0.92f;
            cl.tint = {rng.nextFloat(0.4f, 1.0f), rng.nextFloat(0.4f, 1.0f),
                       rng.nextFloat(0.4f, 1.0f), 1.0f};
            cells_.push_back(cl);
        }
    }

    if (params_.hud_top > 0 || params_.hud_bottom > 0) {
        hud_.emplace(*this, width, height, params_.hud_top,
                     params_.hud_bottom, params_.hud_widgets, seed ^ 0x4d4e);
    }
}

Scene
BoardGame2D::frame(int index)
{
    Scene scene = begin2D();

    scene.submit(background_,
                 anim::spriteAt(screenW() * 0.5f, screenH() * 0.5f,
                                screenW(), screenH(), 0.9f),
                 state2D(FragmentProgram::Textured, bg_texture_));

    // Exactly one cell animates at any time (a "match" pulse); all other
    // cells are bit-identical frame to frame.
    std::size_t active =
        cells_.empty() ? 0
                       : static_cast<std::size_t>(index / params_.anim_period) %
                             cells_.size();
    for (std::size_t i = 0; i < cells_.size(); ++i) {
        const Cell &cl = cells_[i];
        float size = cl.size;
        Vec4 tint = cl.tint;
        if (i == active) {
            size *= 0.8f + 0.2f * anim::pingPong(0.0f, 1.0f, 8.0f, index);
            tint.x = anim::pingPong(0.3f, 1.0f, 6.0f, index);
        }
        DrawCommand &cmd = scene.submit(
            cell_quad_, anim::spriteAt(cl.x, cl.y, size, size, 0.5f),
            state2D(FragmentProgram::TexturedTint, cell_texture_));
        cmd.tint = tint;
    }

    if (hud_)
        hud_->submit(scene, index, params_.dynamic_hud);
    return scene;
}

// ------------------------------------------------------ StrategyGame2D --

StrategyGame2D::StrategyGame2D(Info info, int width, int height,
                               std::uint64_t seed, const Params &params)
    : WorkloadBase(std::move(info), width, height, seed), params_(params)
{
    map_texture_ = addTexture(Texture(TextureKind::Noise, 256,
                                      {0.18f, 0.30f, 0.12f, 1.0f},
                                      {0.35f, 0.30f, 0.20f, 1.0f},
                                      seed ^ 0x3a9, 48));
    unit_texture_ = addTexture(Texture(TextureKind::Checker, 32,
                                       {0.85f, 0.85f, 0.9f, 1.0f},
                                       {0.3f, 0.3f, 0.4f, 1.0f},
                                       seed ^ 0x111, 2));
    map_ = addMesh(meshes::quad({1, 1, 1, 1}));
    unit_quad_ = addMesh(meshes::quad({1, 1, 1, 1}));
    panel_ = addMesh(meshes::quad({0.2f, 0.2f, 0.24f, 1.0f}));
    popup_panel_ = addMesh(meshes::quad({0.9f, 0.87f, 0.8f, 1.0f}));

    // Static decorations (trees/houses) baked into one batch.
    Rng rng = elementRng(0xdec0);
    Mesh decor;
    for (int i = 0; i < 40; ++i) {
        Mesh d = meshes::quad({rng.nextFloat(0.2f, 0.7f),
                               rng.nextFloat(0.3f, 0.8f),
                               rng.nextFloat(0.2f, 0.5f), 1.0f});
        float s = rng.nextFloat(14.0f, 40.0f);
        float x = rng.nextFloat(0.0f, width - params_.panel_px);
        float y = rng.nextFloat(static_cast<float>(params_.hud_top),
                                static_cast<float>(height));
        for (auto &v : d.vertices) {
            v.position.x = v.position.x * s + x;
            v.position.y = v.position.y * s + y;
            v.position.z = 0.6f;
        }
        decor.append(d);
    }
    decor_batch_ = addMesh(std::move(decor));

    int total = params_.idle_units + params_.marching_units;
    for (int i = 0; i < total; ++i) {
        Unit u;
        u.marching = i >= params_.idle_units;
        u.x = rng.nextFloat(params_.unit_size,
                            width - params_.panel_px - params_.unit_size);
        u.y = rng.nextFloat(params_.hud_top + params_.unit_size,
                            height - params_.unit_size);
        u.phase = rng.nextFloat(0.0f, 6.28f);
        u.radius = params_.march_radius * rng.nextFloat(0.5f, 1.0f);
        u.period = params_.march_period * rng.nextFloat(0.8f, 1.3f);
        u.tint = {rng.nextFloat(0.4f, 1.0f), rng.nextFloat(0.4f, 1.0f),
                  rng.nextFloat(0.4f, 1.0f), 1.0f};
        units_.push_back(u);
    }

    if (params_.hud_top > 0 || params_.hud_bottom > 0) {
        hud_.emplace(*this, width, height, params_.hud_top,
                     params_.hud_bottom, 3, seed ^ 0x4d4f);
    }
}

Scene
StrategyGame2D::frame(int index)
{
    Scene scene = begin2D();

    scene.submit(map_,
                 anim::spriteAt(screenW() * 0.5f, screenH() * 0.5f,
                                screenW(), screenH(), 0.9f),
                 state2D(FragmentProgram::Textured, map_texture_));
    scene.submit(decor_batch_, Mat4::identity(),
                 state2D(FragmentProgram::Flat));

    for (const Unit &u : units_) {
        float x = u.x, y = u.y;
        if (u.marching) {
            Vec3 p = anim::orbitXZ({u.x, 0.0f, u.y}, u.radius, u.period,
                                   index, u.phase);
            x = p.x;
            y = p.z;
        }
        DrawCommand &cmd = scene.submit(
            unit_quad_,
            anim::spriteAt(x, y, params_.unit_size, params_.unit_size, 0.5f),
            state2D(FragmentProgram::TexturedTint, unit_texture_));
        cmd.tint = u.tint;
    }

    if (params_.panel_px > 0) {
        scene.submit(panel_,
                     anim::spriteAt(screenW() - params_.panel_px * 0.5f,
                                    screenH() * 0.5f,
                                    static_cast<float>(params_.panel_px),
                                    screenH(), 0.1f),
                     state2D(FragmentProgram::Flat));
    }

    bool popup = params_.popup_period > 0 &&
                 (index / params_.popup_period) % 3 != 0;
    if (popup) {
        float pw = screenW() * params_.popup_coverage;
        float ph = screenH() * params_.popup_coverage;
        scene.submit(popup_panel_,
                     anim::spriteAt(screenW() * 0.45f, screenH() * 0.5f, pw,
                                    ph, 0.05f),
                     state2D(FragmentProgram::Flat));
    }

    if (hud_)
        hud_->submit(scene, index, params_.dynamic_hud);
    return scene;
}

// ------------------------------------------------------------ Action3D --

Action3D::Action3D(Info info, int width, int height, std::uint64_t seed,
                   const Params &params)
    : WorkloadBase(std::move(info), width, height, seed),
      params_(params),
      env_(*this, params.env, seed ^ 0xe4711),
      actors_(*this, params.actors, seed ^ 0xac708)
{
    if (params_.hud_top > 0 || params_.hud_bottom > 0) {
        hud_.emplace(*this, width, height, params_.hud_top,
                     params_.hud_bottom, params_.hud_widgets, seed ^ 0x4d50);
    }
    if (params_.weapon)
        weapon_mesh_ = addMesh(meshes::box({0.35f, 0.32f, 0.3f, 1.0f}));
    if (params_.particles > 0) {
        particle_quad_ = addMesh(meshes::quad({1.0f, 0.8f, 0.3f, 0.45f}));
        Rng rng = elementRng(0x9a27);
        for (int i = 0; i < params_.particles; ++i)
            particle_phase_.push_back(rng.nextFloat(0.0f, 6.28f));
    }
}

Scene
Action3D::frame(int index)
{
    // Camera with a subtle bob/sway: every world-space primitive's screen
    // attributes change each frame, so the 3D region never matches for
    // plain RE.
    float bob = anim::oscillate(0.0f, params_.cam_bob, 37.0f, index);
    float sway = anim::oscillate(0.0f, params_.cam_bob * 0.6f, 53.0f, index);
    Vec3 eye = {sway, params_.cam_height + bob, params_.cam_distance};
    Vec3 at = {0.0f, 1.5f, 0.0f};
    Scene scene = begin3D(eye, at, 55.0f);

    env_.submit(scene);
    actors_.submit(scene, index);

    if (weapon_mesh_) {
        // First-person weapon: a large prop locked to the camera,
        // covering the lower-right of the screen and very close to the
        // near plane — a strong occluder with a tiny Z_near.
        float kick = anim::oscillate(0.0f, 0.02f, 23.0f, index);
        Mat4 xf = Mat4::translate({eye.x + 0.55f, eye.y - 0.55f + kick,
                                   eye.z - 1.1f}) *
                  Mat4::rotateY(0.25f) * Mat4::scale({0.8f, 0.5f, 1.8f});
        scene.submit(weapon_mesh_, xf, state3D(FragmentProgram::Flat));
    }

    for (std::size_t i = 0; i < particle_phase_.size(); ++i) {
        // Translucent embers drifting above the arena (back-to-front
        // enough for our purposes: they do not overlap each other).
        float ph = particle_phase_[i];
        Vec3 p = anim::orbitXZ({0.0f, 0.0f, 0.0f}, 6.0f + (i % 5),
                               240.0f + 10.0f * (i % 7), index, ph);
        p.y = 2.0f + anim::oscillate(1.0f, 1.0f, 90.0f, index, ph);
        Mat4 xf = Mat4::translate(p) * Mat4::scale({0.8f, 0.8f, 1.0f});
        scene.submit(particle_quad_, xf,
                     state3DTranslucent(FragmentProgram::Flat));
    }

    if (hud_)
        hud_->submit(scene, index, params_.dynamic_hud);
    return scene;
}

// ------------------------------------------------------------ Arcade3D --

Arcade3D::Arcade3D(Info info, int width, int height, std::uint64_t seed,
                   const Params &params)
    : WorkloadBase(std::move(info), width, height, seed),
      params_(params),
      env_(*this, params.env, seed ^ 0xa5c4)
{
    Rng rng = elementRng(0x0b7ec);
    for (int i = 0; i < params_.objects; ++i) {
        Object o;
        Vec4 tint = {rng.nextFloat(0.4f, 1.0f), rng.nextFloat(0.4f, 1.0f),
                     rng.nextFloat(0.4f, 1.0f), 1.0f};
        o.mesh = rng.nextBool() ? addMesh(meshes::sphere(8, 10, tint))
                                : addMesh(meshes::box(tint));
        o.phase = rng.nextFloat(0.0f, 6.28f);
        o.radius = params_.orbit_radius * rng.nextFloat(0.5f, 1.2f);
        o.period = params_.orbit_period * rng.nextFloat(0.8f, 1.3f);
        o.scale = params_.object_scale * rng.nextFloat(0.7f, 1.4f);
        o.height = rng.nextFloat(1.0f, 6.0f);
        objects_.push_back(o);
    }

    if (params_.hud_top > 0 || params_.hud_bottom > 0) {
        hud_.emplace(*this, width, height, params_.hud_top,
                     params_.hud_bottom, params_.hud_widgets, seed ^ 0x4d51);
    }
    if (params_.particles > 0)
        particle_quad_ = addMesh(meshes::quad({0.9f, 0.95f, 1.0f, 0.35f}));
}

Scene
Arcade3D::frame(int index)
{
    Vec3 eye = {0.0f, params_.cam_height, params_.cam_distance};
    if (params_.cam_orbit_period > 0.0f) {
        eye = anim::orbitXZ({0.0f, params_.cam_height, 0.0f},
                            params_.cam_distance, params_.cam_orbit_period,
                            index);
    }
    Scene scene = begin3D(eye, {0.0f, 2.0f, 0.0f}, 60.0f);

    env_.submit(scene);

    for (const Object &o : objects_) {
        Vec3 p = anim::orbitXZ({0.0f, o.height, 0.0f}, o.radius, o.period,
                               index, o.phase);
        float spin = anim::spin(o.period * 0.45f, index, o.phase);
        scene.submit(o.mesh,
                     Mat4::translate(p) * Mat4::rotateY(spin) *
                         Mat4::scale({o.scale, o.scale, o.scale}),
                     state3D(FragmentProgram::Flat));
    }

    if (particle_quad_) {
        for (int i = 0; i < params_.particles; ++i) {
            Vec3 p = anim::orbitXZ({0.0f, 0.0f, 0.0f}, 4.0f + i,
                                   200.0f + 12.0f * i, index,
                                   static_cast<float>(i));
            p.y = 3.0f + anim::oscillate(0.0f, 2.0f, 70.0f, index,
                                         static_cast<float>(i));
            scene.submit(particle_quad_,
                         Mat4::translate(p) * Mat4::scale({1.2f, 1.2f, 1.0f}),
                         state3DTranslucent(FragmentProgram::Flat));
        }
    }

    if (hud_)
        hud_->submit(scene, index, params_.dynamic_hud);
    return scene;
}

} // namespace workloads
} // namespace evrsim
