/**
 * @file
 * The five workload families that synthesize the 20 benchmarks of
 * Table III. Each family reproduces the pipeline-relevant *structure* of
 * its genre; the registry instantiates them with per-benchmark
 * parameters (see registry.cpp for the full mapping and rationale).
 */
#ifndef EVRSIM_WORKLOADS_SUITE_HPP
#define EVRSIM_WORKLOADS_SUITE_HPP

#include <optional>

#include "workloads/elements.hpp"

namespace evrsim {
namespace workloads {

/**
 * Casual 2D sprite game (abi, ctr, wmw, dpe, wog, mto, hop): full-screen
 * background, a batched static sprite layer, a handful of animated
 * sprites, optional HUD, and an optional periodic full/partial-screen
 * popup menu under which the animation keeps running — the scenario
 * where EVR's layer-based prediction beats plain RE.
 */
class SpriteGame2D : public WorkloadBase
{
  public:
    struct Params {
        SpriteField::Params field;
        /** Popup toggles every this many frames (0 = never). */
        int popup_period = 0;
        /** Popup size as a fraction of the screen. */
        float popup_coverage = 0.55f;
        int hud_top = 0;
        int hud_bottom = 0;
        int hud_widgets = 0;
        bool dynamic_hud = false;
    };

    SpriteGame2D(Info info, int width, int height, std::uint64_t seed,
                 const Params &params);

    Scene frame(int index) override;

  private:
    bool popupVisible(int frame) const;

    Params params_;
    SpriteField field_;
    std::optional<Hud> hud_;
    const Mesh *popup_panel_ = nullptr;
    const Mesh *popup_content_ = nullptr;
    int popup_texture_ = -1;
};

/**
 * 2D board/puzzle game (ccs, cde): static chrome and a grid of cells of
 * which only one animates at a time — extremely high frame-to-frame
 * redundancy, the RE sweet spot.
 */
class BoardGame2D : public WorkloadBase
{
  public:
    struct Params {
        int cols = 8;
        int rows = 8;
        /** Frames each cell animation lasts. */
        int anim_period = 24;
        int hud_top = 0;
        int hud_bottom = 0;
        int hud_widgets = 4;
        bool dynamic_hud = false;
    };

    BoardGame2D(Info info, int width, int height, std::uint64_t seed,
                const Params &params);

    Scene frame(int index) override;

  private:
    struct Cell {
        float x, y, size;
        Vec4 tint;
    };

    Params params_;
    const Mesh *background_ = nullptr;
    const Mesh *cell_quad_ = nullptr;
    int bg_texture_ = -1;
    int cell_texture_ = -1;
    std::vector<Cell> cells_;
    std::optional<Hud> hud_;
};

/**
 * 2D strategy/simulation (arm, ale, coc, red, hay): a large static map,
 * many unit sprites of which a fraction patrol along loops, side panels,
 * and (hay) periodic popup menus over the animated farm.
 */
class StrategyGame2D : public WorkloadBase
{
  public:
    struct Params {
        int idle_units = 60;
        int marching_units = 14;
        float unit_size = 26.0f;
        float march_radius = 60.0f;
        float march_period = 150.0f;
        int panel_px = 0;        ///< right-hand side panel width
        int popup_period = 0;    ///< as in SpriteGame2D
        float popup_coverage = 0.5f;
        int hud_top = 0;
        int hud_bottom = 0;
        bool dynamic_hud = false;
    };

    StrategyGame2D(Info info, int width, int height, std::uint64_t seed,
                   const Params &params);

    Scene frame(int index) override;

  private:
    struct Unit {
        float x, y, phase, radius, period;
        Vec4 tint;
        bool marching;
    };

    Params params_;
    const Mesh *map_ = nullptr;
    const Mesh *decor_batch_ = nullptr;
    const Mesh *unit_quad_ = nullptr;
    const Mesh *panel_ = nullptr;
    const Mesh *popup_panel_ = nullptr;
    int map_texture_ = -1;
    int unit_texture_ = -1;
    std::vector<Unit> units_;
    std::optional<Hud> hud_;
};

/**
 * 3D action game (300, mst): full 3D environment, animated fighters, an
 * optional first-person weapon filling part of the screen, translucent
 * particles, camera bob (so the 3D region never matches frame-to-frame)
 * and a large HUD — under which moving geometry hides, the tiles EVR
 * reclaims on these benchmarks.
 */
class Action3D : public WorkloadBase
{
  public:
    struct Params {
        Environment3D::Params env;
        ActorGroup3D::Params actors;
        /** Camera bob amplitude in world units (0 = static camera). */
        float cam_bob = 0.15f;
        float cam_height = 6.0f;
        float cam_distance = 16.0f;
        /** First-person weapon quad covering the lower-right area. */
        bool weapon = false;
        int particles = 0;
        int hud_top = 0;
        int hud_bottom = 0;
        int hud_widgets = 4;
        bool dynamic_hud = true;
    };

    Action3D(Info info, int width, int height, std::uint64_t seed,
             const Params &params);

    Scene frame(int index) override;

  private:
    Params params_;
    Environment3D env_;
    ActorGroup3D actors_;
    std::optional<Hud> hud_;
    const Mesh *weapon_mesh_ = nullptr;
    const Mesh *particle_quad_ = nullptr;
    std::vector<float> particle_phase_;
};

/**
 * 3D arcade/platform game (ata, csn, ter, tib): environment + moving
 * vehicles/objects, optionally a slowly travelling camera (ter), a small
 * HUD, and translucent effects.
 */
class Arcade3D : public WorkloadBase
{
  public:
    struct Params {
        Environment3D::Params env;
        int objects = 8;          ///< orbiting spheres/boxes
        float object_scale = 1.5f;
        float orbit_radius = 10.0f;
        float orbit_period = 160.0f;
        /** Camera orbits the scene with this period (0 = fixed). */
        float cam_orbit_period = 0.0f;
        float cam_height = 8.0f;
        float cam_distance = 20.0f;
        int particles = 0;
        int hud_top = 0;
        int hud_bottom = 0;
        int hud_widgets = 2;
        bool dynamic_hud = false;
    };

    Arcade3D(Info info, int width, int height, std::uint64_t seed,
             const Params &params);

    Scene frame(int index) override;

  private:
    struct Object {
        const Mesh *mesh;
        float phase, radius, period, scale, height;
    };

    Params params_;
    Environment3D env_;
    std::vector<Object> objects_;
    std::optional<Hud> hud_;
    const Mesh *particle_quad_ = nullptr;
};

} // namespace workloads
} // namespace evrsim

#endif // EVRSIM_WORKLOADS_SUITE_HPP
