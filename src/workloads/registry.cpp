/**
 * @file
 * Benchmark registry: the per-benchmark parameterization.
 *
 * Each entry reproduces its application's pipeline-relevant structure:
 *
 *  - 2D benchmarks contain only NWOZ primitives (painter's algorithm);
 *    3D benchmarks mix WOZ geometry with NWOZ HUDs/particles.
 *  - Redundancy level (how much of the screen is static frame-to-frame)
 *    matches the paper's Figure 9 spread: board/puzzle games very high,
 *    strategy games moderate, 3D action with camera motion near zero.
 *  - The EVR-specific scenarios appear where the paper reports them:
 *    popup menus over live animation (wmw, hay, mto, dpe), HUDs over
 *    moving 3D content (300, mst), a first-person weapon occluder (mst),
 *    and sprite concentration in few tiles (hop).
 */
#include "workloads/registry.hpp"

#include "common/log.hpp"
#include "workloads/suite.hpp"

namespace evrsim {
namespace workloads {

namespace {

/** Reference width the pixel-space parameters below are tuned for. */
constexpr float kRefWidth = 608.0f;

std::uint64_t
seedFor(const std::string &alias)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : alias) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

struct Row {
    const char *alias;
    const char *title;
    const char *genre;
    bool is_3d;
};

const Row kRows[] = {
    {"300", "300: Seize your glory", "Action", true},
    {"ata", "Air Attack", "Arcade", true},
    {"csn", "Crazy Snowboard", "Arcade", true},
    {"mst", "Modern Strike", "First Person Shooter", true},
    {"ter", "Temple Run", "Platform", true},
    {"tib", "Tigerball", "Physics Puzzle", true},
    {"abi", "Angry Birds", "Puzzle", false},
    {"arm", "Armymen", "Strategy", false},
    {"ale", "Avenger Legends", "Strategy", false},
    {"ccs", "Candy Crush Saga", "Puzzle", false},
    {"cde", "Castle Defense", "Tower Defense", false},
    {"coc", "Clash of Clans", "MMO Strategy", false},
    {"ctr", "Cut the Rope", "Puzzle", false},
    {"dpe", "Dude Perfect", "Puzzle", false},
    {"hay", "Hayday", "Simulation", false},
    {"hop", "Hopeless", "Action Survival", false},
    {"mto", "Magic Touch", "Arcade", false},
    {"red", "Redsun", "Strategy", false},
    {"wmw", "Where's my water", "Puzzle", false},
    {"wog", "World of goo", "Physics Puzzle", false},
};

} // namespace

const std::vector<std::string> &
allAliases()
{
    static const std::vector<std::string> aliases = [] {
        std::vector<std::string> v;
        for (const Row &r : kRows)
            v.push_back(r.alias);
        return v;
    }();
    return aliases;
}

const std::vector<std::string> &
aliases3D()
{
    static const std::vector<std::string> aliases = [] {
        std::vector<std::string> v;
        for (const Row &r : kRows)
            if (r.is_3d)
                v.push_back(r.alias);
        return v;
    }();
    return aliases;
}

Workload::Info
infoFor(const std::string &alias)
{
    for (const Row &r : kRows) {
        if (alias == r.alias)
            return {r.alias, r.title, r.genre, r.is_3d};
    }
    fatal("unknown benchmark alias '%s'", alias.c_str());
}

std::unique_ptr<Workload>
make(const std::string &alias, int width, int height)
{
    bool known = false;
    for (const Row &r : kRows)
        known = known || alias == r.alias;
    if (!known)
        return nullptr;

    Workload::Info info = infoFor(alias);
    std::uint64_t seed = seedFor(alias);
    float s = width / kRefWidth; // pixel-space scale factor
    auto px = [s](float v) { return static_cast<int>(v * s); };

    // ----- 3D benchmarks -------------------------------------------------

    if (alias == "300") {
        // Arena brawler: many fighters, camera bob, top+bottom HUD.
        Action3D::Params p;
        p.env.props = 20;
        p.actors.actors = 10;
        p.actors.radius = 9.0f;
        p.cam_bob = 0.18f;
        p.hud_top = px(28);
        p.hud_bottom = px(64);
        p.hud_widgets = 5;
        p.particles = 10;
        return std::make_unique<Action3D>(info, width, height, seed, p);
    }
    if (alias == "mst") {
        // FPS: first-person weapon occluder, large HUD, camera sway.
        Action3D::Params p;
        p.env.props = 24;
        p.actors.actors = 6;
        p.actors.radius = 12.0f;
        p.cam_bob = 0.22f;
        p.cam_height = 2.2f;
        p.cam_distance = 14.0f;
        p.weapon = true;
        p.hud_top = px(24);
        p.hud_bottom = px(80);
        p.hud_widgets = 6;
        p.particles = 6;
        return std::make_unique<Action3D>(info, width, height, seed, p);
    }
    if (alias == "ata") {
        // Planes over terrain, fixed camera, small HUD.
        Arcade3D::Params p;
        p.objects = 12;
        p.object_scale = 2.4f;
        p.orbit_radius = 14.0f;
        p.orbit_period = 90.0f;
        p.hud_top = px(24);
        p.hud_widgets = 2;
        return std::make_unique<Arcade3D>(info, width, height, seed, p);
    }
    if (alias == "csn") {
        // Snowboarding: slowly travelling camera, sparse props.
        Arcade3D::Params p;
        p.env.props = 10;
        p.objects = 4;
        p.cam_orbit_period = 900.0f;
        p.cam_height = 6.0f;
        p.hud_top = px(22);
        return std::make_unique<Arcade3D>(info, width, height, seed, p);
    }
    if (alias == "ter") {
        // Endless runner: continuously travelling camera (lowest 3D
        // redundancy), narrow HUD.
        Arcade3D::Params p;
        p.env.props = 26;
        p.objects = 6;
        p.cam_orbit_period = 420.0f;
        p.cam_distance = 16.0f;
        p.hud_top = px(20);
        p.particles = 4;
        return std::make_unique<Arcade3D>(info, width, height, seed, p);
    }
    if (alias == "tib") {
        // Physics puzzle: fixed camera, a few rolling balls, no HUD bars.
        Arcade3D::Params p;
        p.env.props = 12;
        p.objects = 7;
        p.object_scale = 2.2f;
        p.orbit_period = 120.0f;
        p.hud_top = 0;
        p.hud_bottom = 0;
        return std::make_unique<Arcade3D>(info, width, height, seed, p);
    }

    // ----- 2D benchmarks -------------------------------------------------

    if (alias == "ccs") {
        // Candy board: one match animates at a time, chunky HUD bars.
        BoardGame2D::Params p;
        p.cols = 9;
        p.rows = 7;
        p.anim_period = 6;
        p.hud_top = px(56);
        p.hud_bottom = px(56);
        p.dynamic_hud = true;
        return std::make_unique<BoardGame2D>(info, width, height, seed, p);
    }
    if (alias == "cde") {
        // Tower defense between waves: almost everything static.
        BoardGame2D::Params p;
        p.cols = 10;
        p.rows = 5;
        p.anim_period = 45;
        p.hud_top = px(30);
        p.hud_bottom = px(40);
        return std::make_unique<BoardGame2D>(info, width, height, seed, p);
    }

    if (alias == "abi") {
        // Slingshot puzzle: static level, one flying bird + wobbling pigs.
        SpriteGame2D::Params p;
        p.field.static_sprites = 110;
        p.field.moving_sprites = 14;
        p.field.speed = 190.0f * s;
        p.field.min_size = 36.0f * s;
        p.field.max_size = 80.0f * s;
        p.hud_top = px(26);
        p.hud_widgets = 3;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "ctr") {
        // Mostly static contraption with a small swinging candy.
        SpriteGame2D::Params p;
        p.field.static_sprites = 90;
        p.field.moving_sprites = 12;
        p.field.speed = 85.0f * s;
        p.field.min_size = 24.0f * s;
        p.field.max_size = 56.0f * s;
        p.hud_top = px(24);
        p.hud_widgets = 2;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "dpe") {
        // Nearly still camera shots between trick throws; modal result
        // popup over the (small) animation — very high redundancy.
        SpriteGame2D::Params p;
        p.field.static_sprites = 130;
        p.field.moving_sprites = 9;
        p.field.speed = 55.0f * s;
        p.field.min_size = 24.0f * s;
        p.field.max_size = 50.0f * s;
        p.popup_period = 15;
        p.popup_coverage = 0.65f;
        p.hud_top = px(22);
        p.hud_widgets = 2;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "wmw") {
        // Digging puzzle: static level; water animates; pause/menu panel
        // periodically covers much of it (the paper reports >10% extra
        // tiles for EVR here).
        SpriteGame2D::Params p;
        p.field.static_sprites = 120;
        p.field.moving_sprites = 30;
        p.field.speed = 95.0f * s;
        p.field.min_size = 26.0f * s;
        p.field.max_size = 54.0f * s;
        p.field.translucent_movers = true; // water blobs alpha-blend
        p.popup_period = 10;
        p.popup_coverage = 0.85f;
        p.hud_top = px(24);
        p.hud_widgets = 3;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "wog") {
        // Goo structures: static tower + a few crawling goo balls.
        SpriteGame2D::Params p;
        p.field.static_sprites = 140;
        p.field.moving_sprites = 26;
        p.field.speed = 70.0f * s;
        p.field.min_size = 18.0f * s;
        p.field.max_size = 42.0f * s;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "mto") {
        // Frantic arcade in a fixed frame: high base redundancy plus a
        // periodic shop overlay EVR exploits further.
        SpriteGame2D::Params p;
        p.field.static_sprites = 80;
        p.field.moving_sprites = 16;
        p.field.speed = 95.0f * s;
        p.field.min_size = 18.0f * s;
        p.field.max_size = 34.0f * s;
        p.popup_period = 15;
        p.popup_coverage = 0.7f;
        p.hud_top = px(28);
        p.hud_widgets = 3;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }
    if (alias == "hop") {
        // Survival in a dark bunker: a handful of characters concentrated
        // in few tiles (the paper's low-primitive-count outlier).
        SpriteGame2D::Params p;
        p.field.static_sprites = 30;
        p.field.moving_sprites = 14;
        p.field.spread = 0.35f;
        p.field.speed = 35.0f * s;
        p.field.min_size = 26.0f * s;
        p.field.max_size = 60.0f * s;
        p.hud_bottom = px(30);
        p.hud_widgets = 2;
        return std::make_unique<SpriteGame2D>(info, width, height, seed, p);
    }

    if (alias == "arm") {
        StrategyGame2D::Params p;
        p.idle_units = 60;
        p.marching_units = 26;
        p.unit_size = 28.0f * s;
        p.panel_px = px(90);
        p.hud_top = px(24);
        return std::make_unique<StrategyGame2D>(info, width, height, seed,
                                                p);
    }
    if (alias == "ale") {
        // Team-battle screen: idle roster, a couple of attack animations.
        StrategyGame2D::Params p;
        p.idle_units = 45;
        p.marching_units = 18;
        p.unit_size = 38.0f * s;
        p.march_radius = 55.0f * s;
        p.hud_top = px(30);
        p.hud_bottom = px(44);
        return std::make_unique<StrategyGame2D>(info, width, height, seed,
                                                p);
    }
    if (alias == "coc") {
        // Village view: many buildings, a stream of walkers.
        StrategyGame2D::Params p;
        p.idle_units = 80;
        p.marching_units = 48;
        p.unit_size = 26.0f * s;
        p.march_radius = 110.0f * s;
        p.march_period = 160.0f;
        p.hud_bottom = px(40);
        return std::make_unique<StrategyGame2D>(info, width, height, seed,
                                                p);
    }
    if (alias == "red") {
        StrategyGame2D::Params p;
        p.idle_units = 55;
        p.marching_units = 30;
        p.unit_size = 30.0f * s;
        p.march_radius = 80.0f * s;
        p.panel_px = px(70);
        p.hud_top = px(22);
        return std::make_unique<StrategyGame2D>(info, width, height, seed,
                                                p);
    }
    if (alias == "hay") {
        // Farm sim: animated crops/animals; big shop menus pop over the
        // farm periodically (the paper reports >10% extra tiles here).
        StrategyGame2D::Params p;
        p.idle_units = 70;
        p.marching_units = 26;
        p.unit_size = 32.0f * s;
        p.march_radius = 70.0f * s;
        p.popup_period = 9;
        p.popup_coverage = 0.85f;
        p.hud_top = px(26);
        p.hud_bottom = px(30);
        return std::make_unique<StrategyGame2D>(info, width, height, seed,
                                                p);
    }

    panic("registry row for '%s' exists but has no constructor",
          alias.c_str());
}

WorkloadFactory
factory()
{
    return [](const std::string &alias, int width, int height) {
        return make(alias, width, height);
    };
}

} // namespace workloads
} // namespace evrsim
