/**
 * @file
 * Shared scene-construction elements for the benchmark suite.
 *
 * The 20 benchmarks of Table III are synthesized from a small vocabulary
 * of elements — full-screen backgrounds, sprite fields, boards, HUD bars,
 * terrains, actors — combined with per-benchmark parameters that match
 * each application's *structure*: WOZ/NWOZ mix, overlap depth,
 * frame-to-frame redundancy, motion, HUD coverage.
 */
#ifndef EVRSIM_WORKLOADS_ELEMENTS_HPP
#define EVRSIM_WORKLOADS_ELEMENTS_HPP

#include <deque>

#include "driver/workload.hpp"
#include "scene/animation.hpp"
#include "scene/camera.hpp"

namespace evrsim {
namespace workloads {

/** NWOZ render state: painter's-algorithm 2D (no depth test/write). */
RenderState state2D(FragmentProgram program, int texture = -1,
                    BlendMode blend = BlendMode::Opaque);

/** WOZ render state: depth-tested and depth-writing opaque 3D. */
RenderState state3D(FragmentProgram program, int texture = -1,
                    bool cull = true);

/** Translucent 3D: depth-tested, no depth write, alpha-blended (NWOZ). */
RenderState state3DTranslucent(FragmentProgram program, int texture = -1);

/**
 * Base class providing resource ownership, deterministic seeding and
 * common builders. Subclasses populate meshes/textures in their
 * constructor and implement frame().
 */
class WorkloadBase : public Workload
{
  public:
    WorkloadBase(Info info, int width, int height, std::uint64_t seed);

    Info info() const override { return info_; }

    /** Upload every owned mesh and texture. */
    void setup(GpuSimulator &sim) override;

    /** Take ownership of a mesh; the pointer stays valid forever. */
    Mesh *addMesh(Mesh mesh);

    /** Take ownership of a texture; returns its binding slot. */
    int addTexture(Texture texture);

  protected:

    /** Fresh scene with the 2D pixel camera and all textures bound. */
    Scene begin2D() const;

    /** Fresh scene with a 3D perspective camera and textures bound. */
    Scene begin3D(const Vec3 &eye, const Vec3 &at, float fovy_deg) const;

    /** Deterministic stream for element @p id (order-independent). */
    Rng elementRng(std::uint64_t id) const { return rng_root_.fork(id); }

    float screenW() const { return static_cast<float>(width_); }
    float screenH() const { return static_cast<float>(height_); }

    Info info_;
    int width_;
    int height_;

  private:
    Rng rng_root_;
    std::deque<Mesh> meshes_;
    std::deque<Texture> textures_;
};

/**
 * A head-up display: opaque NWOZ bars/widgets drawn last.
 * Construct once; submit() appends its draw commands to a scene.
 */
class Hud
{
  public:
    /**
     * @param top_px    height of the top bar (0 = none)
     * @param bottom_px height of the bottom bar (0 = none)
     * @param widgets   number of small widgets placed on the bars
     */
    Hud(WorkloadBase &owner, int width, int height, int top_px,
        int bottom_px, int widgets, std::uint64_t seed);

    /**
     * Append the HUD's draw commands.
     * @param frame      current frame (widgets may pulse deterministically)
     * @param dynamic    if true, one widget changes tint every frame
     *                   (a score counter), dirtying its tiles
     */
    void submit(Scene &scene, int frame, bool dynamic) const;

    /** Screen fraction covered by the bars. */
    float coverage() const;

  private:
    struct Widget {
        float x, y, w, h;
        Vec4 tint;
    };

    const Mesh *quad_;
    int texture_;
    int width_, height_, top_px_, bottom_px_;
    std::vector<Widget> widgets_;
};

/**
 * A field of 2D sprites over a full-screen background: the skeleton of
 * every 2D benchmark. Static sprites are baked into one mesh (a single
 * draw command, as real engines batch); moving sprites are separate
 * commands whose transforms animate.
 */
class SpriteField
{
  public:
    struct Params {
        int static_sprites = 120;
        int moving_sprites = 10;
        float min_size = 24.0f;
        float max_size = 64.0f;
        float speed = 40.0f;     ///< movement amplitude in pixels
        float period = 90.0f;    ///< frames per movement cycle
        /** Cluster everything into this central fraction of the screen
         *  (1 = whole screen; small = concentrated, like `hop`). */
        float spread = 1.0f;
        bool translucent_movers = false; ///< movers alpha-blend
    };

    SpriteField(WorkloadBase &owner, int width, int height,
                const Params &params, std::uint64_t seed);

    /** Background + static batch + moving sprites, in painter's order. */
    void submit(Scene &scene, int frame) const;

  private:
    struct Mover {
        float base_x, base_y, size, phase, z;
        Vec4 tint;
    };

    int width_, height_;
    Params params_;
    const Mesh *background_;
    const Mesh *static_batch_;
    const Mesh *sprite_quad_;
    int bg_texture_;
    int sprite_texture_;
    std::vector<Mover> movers_;
};

/**
 * 3D environment: a displaced terrain, a far backdrop and a scattering
 * of static props — the screen-covering WOZ geometry of 3D benchmarks,
 * drawn far-to-near-ish (the overshading-prone order real engines often
 * produce).
 */
class Environment3D
{
  public:
    struct Params {
        int terrain_res = 24;     ///< terrain grid resolution
        int props = 16;           ///< static boxes/spheres scattered about
        float area = 22.0f;       ///< world-units half-extent
    };

    Environment3D(WorkloadBase &owner, const Params &params,
                  std::uint64_t seed);

    /** Submit backdrop, terrain and props (WOZ, opaque). */
    void submit(Scene &scene) const;

  private:
    const Mesh *backdrop_;
    const Mesh *terrain_;
    std::vector<std::pair<const Mesh *, Mat4>> props_;
    int terrain_texture_;
};

/**
 * Animated 3D actors (low-poly characters) orbiting/patrolling the
 * environment. Each actor is one draw command with an animated model
 * matrix and a subtly animated tint, so its attribute bytes change
 * every frame.
 */
class ActorGroup3D
{
  public:
    struct Params {
        int actors = 6;
        float radius = 8.0f;   ///< patrol radius
        float period = 180.0f; ///< frames per lap
        float scale = 2.0f;
    };

    ActorGroup3D(WorkloadBase &owner, const Params &params,
                 std::uint64_t seed);

    void submit(Scene &scene, int frame) const;

  private:
    struct Actor {
        const Mesh *mesh;
        float phase, radius, period, scale;
        Vec3 center;
    };

    std::vector<Actor> actors_;
};

} // namespace workloads
} // namespace evrsim

#endif // EVRSIM_WORKLOADS_ELEMENTS_HPP
