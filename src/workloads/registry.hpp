/**
 * @file
 * The benchmark registry: Table III's twenty applications, mapped onto
 * the workload families with per-benchmark parameters.
 */
#ifndef EVRSIM_WORKLOADS_REGISTRY_HPP
#define EVRSIM_WORKLOADS_REGISTRY_HPP

#include <memory>
#include <string>
#include <vector>

#include "driver/workload.hpp"

namespace evrsim {
namespace workloads {

/** All twenty aliases in Table III order. */
const std::vector<std::string> &allAliases();

/** The six 3D benchmarks (Figure 8's subject set). */
const std::vector<std::string> &aliases3D();

/** Table III row for an alias (fatal on unknown alias). */
Workload::Info infoFor(const std::string &alias);

/**
 * Instantiate a benchmark for the given render-target size. Pixel-space
 * parameters scale with the target so workloads look the same at bench
 * (608x384) and paper (1196x768) resolutions.
 * @return null for unknown aliases.
 */
std::unique_ptr<Workload> make(const std::string &alias, int width,
                               int height);

/** Factory adapter for the ExperimentRunner. */
WorkloadFactory factory();

} // namespace workloads
} // namespace evrsim

#endif // EVRSIM_WORKLOADS_REGISTRY_HPP
