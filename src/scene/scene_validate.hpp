/**
 * @file
 * Panic-free scene/draw-stream ingestion validation.
 *
 * The simulation core historically trusted its Scene input: a NaN
 * matrix, an out-of-range index or a dangling texture slot was either
 * undefined behavior or an assert deep inside the pipeline. These
 * checks make malformed input a structured, survivable condition:
 *
 *  - validateScene() returns the first problem as a Status
 *    (EVRSIM_VALIDATE=strict: the run fails with it);
 *  - auditScene() returns every problem, attributed to a draw command
 *    or to the frame-level camera/clear state;
 *  - sanitizeScene() applies the permissive policy: offending commands
 *    are dropped, a broken camera drops the whole frame's commands, and
 *    an out-of-range clear depth is clamped — deterministically, so
 *    every configuration of a sweep renders the *same* sanitized frame
 *    and image-identity comparisons remain meaningful.
 */
#ifndef EVRSIM_SCENE_SCENE_VALIDATE_HPP
#define EVRSIM_SCENE_SCENE_VALIDATE_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/** One problem found in a scene. */
struct SceneIssue {
    /** Offending command index, or -1 for frame-level state. */
    int command = -1;
    std::string detail;
};

/** Everything wrong with one scene. */
struct SceneAuditReport {
    std::vector<SceneIssue> issues;

    bool ok() const { return issues.empty(); }

    /** True if the camera/clear state itself is unusable. */
    bool
    frameLevel() const
    {
        for (const SceneIssue &i : issues)
            if (i.command < 0)
                return true;
        return false;
    }

    /** First issue as InvalidArgument ("command 3: ..."); Ok if none. */
    Status toStatus() const;
};

/**
 * Audit every command and the frame-level state. Checks: finite
 * view/proj/model matrices and tints, clear depth in [0, 1], non-null
 * uploaded meshes, index buffers that are in-bounds triangle lists,
 * finite vertex attributes, and texture slots that exist (and are
 * non-null) whenever the fragment program samples.
 */
SceneAuditReport auditScene(const Scene &scene);

/** First problem as a Status (strict-mode ingestion). */
Status validateScene(const Scene &scene);

/**
 * Apply the permissive policy for @p report to @p scene (drop offending
 * commands; frame-level damage drops all commands and resets the clear
 * depth). @return number of commands dropped.
 */
std::size_t sanitizeScene(Scene &scene, const SceneAuditReport &report);

} // namespace evrsim

#endif // EVRSIM_SCENE_SCENE_VALIDATE_HPP
