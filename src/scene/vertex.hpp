/**
 * @file
 * Vertex formats used by the pipeline.
 */
#ifndef EVRSIM_SCENE_VERTEX_HPP
#define EVRSIM_SCENE_VERTEX_HPP

#include "common/vec.hpp"

namespace evrsim {

/**
 * Application-side (object-space) vertex, the unit stored in simulated
 * vertex buffers and fetched by the Geometry Pipeline.
 */
struct Vertex {
    Vec3 position; ///< object-space position
    Vec4 color;    ///< per-vertex RGBA color
    Vec2 uv;       ///< texture coordinates

    constexpr bool operator==(const Vertex &o) const = default;
};

/** Bytes one vertex occupies in the simulated vertex buffer. */
constexpr unsigned kVertexBytes = sizeof(Vertex);

static_assert(kVertexBytes == 36, "vertex layout must stay 9 floats");

} // namespace evrsim

#endif // EVRSIM_SCENE_VERTEX_HPP
