/**
 * @file
 * Deterministic scene corruption for the robustness harness.
 *
 * The fuzzer injects the malformed-input classes the ingestion
 * validator must catch: NaN/Inf transforms and attributes, null or
 * un-uploaded meshes, out-of-range indices and texture slots, broken
 * clear depths. Every corruption is a pure function of (seed, key), so
 * corrupting the same frame of the same workload produces the same
 * damage regardless of which configuration renders it — the property
 * that lets tests assert bit-identical final images between a fuzzed
 * baseline run and a fuzzed EVR run.
 *
 * Meshes are never mutated in place (they are shared, possibly across
 * concurrently-simulated configurations): a corrupted command is
 * repointed at a private clone owned by the fuzzer, which must outlive
 * rendering of the corrupted scene.
 */
#ifndef EVRSIM_SCENE_SCENE_FUZZER_HPP
#define EVRSIM_SCENE_SCENE_FUZZER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scene/scene.hpp"

namespace evrsim {

/** Seeded scene mutator (SplitMix64 decisions, see fault_injector). */
class SceneFuzzer
{
  public:
    explicit SceneFuzzer(std::uint64_t seed) : seed_(seed) {}

    /** Number of distinct corruption kinds corruptScene() can apply. */
    static constexpr int kNumCorruptions = 8;

    /**
     * Apply one corruption to @p scene, chosen deterministically by
     * (seed, @p key). No-op on a scene without commands (returns "").
     * @return a short description of the damage, for logging/asserts.
     */
    std::string corruptScene(Scene &scene, std::uint64_t key);

  private:
    std::uint64_t seed_;
    /** Clones backing corrupted commands; must outlive their scenes. */
    std::vector<std::unique_ptr<Mesh>> owned_meshes_;
};

} // namespace evrsim

#endif // EVRSIM_SCENE_SCENE_FUZZER_HPP
