/**
 * @file
 * Scene ingestion validation implementation.
 */
#include "scene/scene_validate.hpp"

#include <cmath>

namespace evrsim {

namespace {

bool
finite(float v)
{
    return std::isfinite(v);
}

bool
finiteVec4(const Vec4 &v)
{
    return finite(v.x) && finite(v.y) && finite(v.z) && finite(v.w);
}

bool
finiteMat4(const Mat4 &m)
{
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            if (!finite(m.m[r][c]))
                return false;
    return true;
}

/** Does @p program sample a texture (must mirror the shader core). */
bool
programSamples(FragmentProgram program)
{
    return program == FragmentProgram::Textured ||
           program == FragmentProgram::TexturedTint ||
           program == FragmentProgram::TexturedDiscard;
}

void
add(SceneAuditReport &report, int command, std::string detail)
{
    report.issues.push_back({command, std::move(detail)});
}

/** Check one command; appends at most one issue (first problem wins). */
void
auditCommand(const Scene &scene, int index, SceneAuditReport &report)
{
    const DrawCommand &cmd =
        scene.commands[static_cast<std::size_t>(index)];

    if (!cmd.mesh) {
        add(report, index, "null mesh pointer");
        return;
    }
    const Mesh &mesh = *cmd.mesh;

    if (!finiteMat4(cmd.model)) {
        add(report, index, "non-finite model matrix");
        return;
    }
    if (!finiteVec4(cmd.tint)) {
        add(report, index, "non-finite tint");
        return;
    }

    if (mesh.indices.size() % 3 != 0) {
        add(report, index,
            "index count " + std::to_string(mesh.indices.size()) +
                " is not a multiple of 3");
        return;
    }
    for (std::uint32_t idx : mesh.indices) {
        if (idx >= mesh.vertices.size()) {
            add(report, index,
                "index " + std::to_string(idx) + " out of range (" +
                    std::to_string(mesh.vertices.size()) + " vertices)");
            return;
        }
    }
    for (const Vertex &v : mesh.vertices) {
        if (!finite(v.position.x) || !finite(v.position.y) ||
            !finite(v.position.z) || !finiteVec4(v.color) ||
            !finite(v.uv.x) || !finite(v.uv.y)) {
            add(report, index, "non-finite vertex attribute");
            return;
        }
    }

    const int slot = cmd.state.texture;
    if (slot >= static_cast<int>(scene.textures.size())) {
        add(report, index,
            "texture slot " + std::to_string(slot) + " out of range (" +
                std::to_string(scene.textures.size()) + " bound)");
        return;
    }
    if (slot >= 0 && scene.textures[static_cast<std::size_t>(slot)] ==
                         nullptr) {
        add(report, index,
            "texture slot " + std::to_string(slot) + " is null");
        return;
    }
    if (programSamples(cmd.state.program) && slot < 0) {
        add(report, index, "sampling fragment program with no texture");
        return;
    }
}

} // namespace

Status
SceneAuditReport::toStatus() const
{
    if (ok())
        return {};
    const SceneIssue &first = issues.front();
    if (first.command < 0)
        return Status::invalidArgument("scene: " + first.detail);
    return Status::invalidArgument(
        "scene command " + std::to_string(first.command) + ": " +
        first.detail);
}

SceneAuditReport
auditScene(const Scene &scene)
{
    SceneAuditReport report;

    if (!finiteMat4(scene.view))
        add(report, -1, "non-finite view matrix");
    if (!finiteMat4(scene.proj))
        add(report, -1, "non-finite projection matrix");
    if (!finite(scene.clear_depth) || scene.clear_depth < 0.0f ||
        scene.clear_depth > 1.0f)
        add(report, -1,
            "clear depth outside [0, 1]");

    for (int i = 0; i < static_cast<int>(scene.commands.size()); ++i)
        auditCommand(scene, i, report);

    return report;
}

Status
validateScene(const Scene &scene)
{
    return auditScene(scene).toStatus();
}

std::size_t
sanitizeScene(Scene &scene, const SceneAuditReport &report)
{
    if (report.ok())
        return 0;

    // A broken clear depth is repaired in place (the default is the
    // only value every configuration can agree on).
    if (!std::isfinite(scene.clear_depth) || scene.clear_depth < 0.0f ||
        scene.clear_depth > 1.0f)
        scene.clear_depth = 1.0f;

    // An unusable camera poisons every command's transform: the only
    // deterministic safe output is the clear color, so the whole
    // frame's draw stream is dropped.
    bool broken_camera = false;
    for (const SceneIssue &i : report.issues)
        if (i.command < 0 && i.detail.find("matrix") != std::string::npos)
            broken_camera = true;
    if (broken_camera) {
        std::size_t dropped = scene.commands.size();
        scene.commands.clear();
        return dropped;
    }

    std::vector<char> drop(scene.commands.size(), 0);
    for (const SceneIssue &i : report.issues)
        if (i.command >= 0 &&
            i.command < static_cast<int>(scene.commands.size()))
            drop[static_cast<std::size_t>(i.command)] = 1;

    std::size_t dropped = 0;
    std::vector<DrawCommand> kept;
    kept.reserve(scene.commands.size());
    for (std::size_t i = 0; i < scene.commands.size(); ++i) {
        if (drop[i]) {
            ++dropped;
            continue;
        }
        kept.push_back(scene.commands[i]);
    }
    // Command ids keep their submission-order values: the Layer
    // Generator Table only requires ids to be monotonic, and renumbering
    // would change layer assignment relative to a config that saw the
    // same sanitized stream.
    scene.commands = std::move(kept);
    return dropped;
}

} // namespace evrsim
