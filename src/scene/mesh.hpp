/**
 * @file
 * Indexed triangle meshes and procedural builders.
 *
 * Meshes are the only geometry container: every workload builds its scenes
 * from these (sprites are camera-facing quads, terrain is a displaced grid,
 * models are boxes/spheres/extrusions). Each mesh can be "uploaded", which
 * assigns it an address range in the simulated vertex-buffer region so the
 * vertex cache sees realistic access patterns.
 */
#ifndef EVRSIM_SCENE_MESH_HPP
#define EVRSIM_SCENE_MESH_HPP

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mem/mem_types.hpp"
#include "scene/vertex.hpp"

namespace evrsim {

/** Indexed triangle mesh. */
struct Mesh {
    std::vector<Vertex> vertices;
    std::vector<std::uint32_t> indices; ///< triangle list, 3 per triangle

    /** Base address in the simulated vertex-buffer region; 0 = not uploaded. */
    Addr buffer_base = 0;

    std::size_t triangleCount() const { return indices.size() / 3; }

    /** Simulated address of vertex @p i's attributes. */
    Addr
    vertexAddr(std::uint32_t i) const
    {
        return buffer_base + static_cast<Addr>(i) * kVertexBytes;
    }

    /** Append another mesh's triangles (indices are rebased). */
    void append(const Mesh &other);
};

/** Procedural mesh builders used by examples and workloads. */
namespace meshes {

/**
 * Unit quad in the XY plane, centered at origin, +Z normal,
 * with the given uniform color and a full [0,1]^2 UV range.
 */
Mesh quad(const Vec4 &color);

/** Quad with one color per corner (gradient sprites). */
Mesh quadCorners(const Vec4 &c00, const Vec4 &c10, const Vec4 &c11,
                 const Vec4 &c01);

/**
 * Regular grid of (nx x ny) quads spanning [-0.5, 0.5]^2 in XY.
 * @param jitter_z amplitude of deterministic per-vertex Z displacement,
 *                 used to build terrain-like meshes.
 */
Mesh grid(int nx, int ny, const Vec4 &color, float jitter_z,
          std::uint64_t seed);

/** Axis-aligned unit cube centered at the origin, one color per face tint. */
Mesh box(const Vec4 &color);

/** UV sphere of the given resolution. */
Mesh sphere(int stacks, int slices, const Vec4 &color);

/**
 * A low-poly "character": a stack of boxes (body, head, limbs) whose
 * proportions are drawn deterministically from @p seed. Used by 3D
 * workloads as animated actors.
 */
Mesh character(std::uint64_t seed, const Vec4 &tint);

} // namespace meshes

} // namespace evrsim

#endif // EVRSIM_SCENE_MESH_HPP
