/**
 * @file
 * SceneFuzzer implementation.
 */
#include "scene/scene_fuzzer.hpp"

#include <limits>

#include "common/fault_injector.hpp"

namespace evrsim {

namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

/** Cheap counter-mode stream over the fuzzer's (seed, key) pair. */
struct FuzzRng {
    std::uint64_t state;
    std::uint64_t n = 0;

    std::uint64_t next() { return mix64(state ^ mix64(n++)); }

    /** Uniform draw in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }
};

} // namespace

std::string
SceneFuzzer::corruptScene(Scene &scene, std::uint64_t key)
{
    if (scene.commands.empty())
        return "";

    FuzzRng rng{mix64(seed_ ^ mix64(key))};
    const std::size_t target = static_cast<std::size_t>(
        rng.below(scene.commands.size()));
    DrawCommand &cmd = scene.commands[target];
    const std::string where =
        "command " + std::to_string(target) + ": ";
    const int kind = static_cast<int>(rng.below(kNumCorruptions));

    switch (kind) {
      case 0:
        cmd.mesh = nullptr;
        return where + "mesh pointer nulled";
      case 1: {
        const int r = static_cast<int>(rng.below(4));
        const int c = static_cast<int>(rng.below(4));
        cmd.model.m[r][c] = kNaN;
        return where + "model matrix cell set to NaN";
      }
      case 2:
        cmd.tint.y = kInf;
        return where + "tint component set to Inf";
      case 3:
        cmd.state.texture =
            static_cast<int>(scene.textures.size()) + 7;
        return where + "texture slot pointed out of range";
      case 4:
        scene.clear_depth = kNaN;
        return "clear depth set to NaN";
      case 5: {
        const int r = static_cast<int>(rng.below(4));
        const int c = static_cast<int>(rng.below(4));
        scene.view.m[r][c] = kNaN;
        return "view matrix cell set to NaN";
      }
      case 6:
      case 7: {
        if (!cmd.mesh || cmd.mesh->vertices.empty() ||
            cmd.mesh->indices.empty()) {
            cmd.mesh = nullptr;
            return where + "mesh pointer nulled (clone not possible)";
        }
        // Repoint the command at a private, damaged clone; the shared
        // original may be in use by other configurations of the sweep.
        // The clone keeps buffer_base so memory traffic stays plausible
        // for any primitive that still renders.
        owned_meshes_.push_back(std::make_unique<Mesh>(*cmd.mesh));
        Mesh &clone = *owned_meshes_.back();
        cmd.mesh = &clone;
        if (kind == 6) {
            const std::size_t slot = static_cast<std::size_t>(
                rng.below(clone.indices.size()));
            clone.indices[slot] = static_cast<std::uint32_t>(
                clone.vertices.size() + rng.below(1000));
            return where + "cloned mesh index pushed out of range";
        }
        const std::size_t v = static_cast<std::size_t>(
            rng.below(clone.vertices.size()));
        clone.vertices[v].position.z = kNaN;
        return where + "cloned mesh vertex position set to NaN";
      }
      default:
        break;
    }
    return "";
}

} // namespace evrsim
