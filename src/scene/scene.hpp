/**
 * @file
 * A frame's worth of work: camera, clear values and draw commands.
 */
#ifndef EVRSIM_SCENE_SCENE_HPP
#define EVRSIM_SCENE_SCENE_HPP

#include <vector>

#include "common/color.hpp"
#include "common/mat4.hpp"
#include "scene/draw_command.hpp"
#include "scene/texture.hpp"

namespace evrsim {

/** All state the GPU needs to render one frame. */
struct Scene {
    Mat4 view = Mat4::identity();
    Mat4 proj = Mat4::identity();

    Rgba8 clear_color = {20, 24, 40, 255};
    float clear_depth = 1.0f;

    std::vector<DrawCommand> commands;

    /**
     * Texture bindings for this frame; RenderState::texture indexes into
     * this table. Textures are owned by the workload.
     */
    std::vector<const Texture *> textures;

    /** Combined view-projection matrix. */
    Mat4 viewProj() const { return proj * view; }

    /**
     * Append a command, assigning the next command id in submission
     * order. Returns a reference so callers can tweak fields.
     */
    DrawCommand &
    submit(const Mesh *mesh, const Mat4 &model, const RenderState &state)
    {
        DrawCommand cmd;
        cmd.id = static_cast<std::uint32_t>(commands.size());
        cmd.mesh = mesh;
        cmd.model = model;
        cmd.state = state;
        commands.push_back(cmd);
        return commands.back();
    }
};

} // namespace evrsim

#endif // EVRSIM_SCENE_SCENE_HPP
