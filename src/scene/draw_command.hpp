/**
 * @file
 * Draw commands: the unit of work an application submits to the GPU.
 *
 * A draw command couples a mesh, a model transform and the render state
 * under which its primitives are processed. The EVR layer mechanism
 * counts *commands* per tile to derive layer identifiers, so command
 * identity (its position in the frame's submission order) is significant.
 */
#ifndef EVRSIM_SCENE_DRAW_COMMAND_HPP
#define EVRSIM_SCENE_DRAW_COMMAND_HPP

#include <cstdint>

#include "common/mat4.hpp"
#include "scene/mesh.hpp"

namespace evrsim {

/** Built-in fragment programs (cost table lives in the GPU shader core). */
enum class FragmentProgram : std::uint8_t {
    Flat,          ///< interpolated vertex color only
    Textured,      ///< nearest-sampled texture
    TexturedTint,  ///< texture modulated by interpolated color
    Procedural,    ///< ALU-heavy procedural pattern, no texture
    TexturedDiscard, ///< textured; discards fragments with alpha < 0.5
};

/** Framebuffer blend modes. */
enum class BlendMode : std::uint8_t {
    Opaque, ///< overwrite (fragment alpha forced to 1)
    Alpha,  ///< src-alpha / one-minus-src-alpha blending
};

/** Fixed-function and shader state for one draw command. */
struct RenderState {
    /** True if fragments update the Z Buffer: the paper's WOZ class. */
    bool depth_write = true;
    /** True if fragments are depth-tested against the Z Buffer. */
    bool depth_test = true;
    /** Cull triangles facing away from the camera (3D solids). */
    bool cull_backface = false;
    BlendMode blend = BlendMode::Opaque;
    FragmentProgram program = FragmentProgram::Flat;
    /** Texture slot in the workload's texture set; -1 = none. */
    int texture = -1;

    /** WOZ per the paper's classification (writes on Z). */
    bool isWoz() const { return depth_write; }

    /**
     * True when the fragment shader can alter visibility (discard), which
     * prevents the Early Depth Test from updating the Z Buffer early.
     */
    bool
    shaderDiscards() const
    {
        return program == FragmentProgram::TexturedDiscard;
    }

    constexpr bool operator==(const RenderState &o) const = default;
};

/** One draw command: a mesh drawn with a transform and state. */
struct DrawCommand {
    /**
     * Command identifier, unique within a frame and monotonically
     * increasing in submission order. The Layer Generator Table compares
     * these to detect "a primitive from a new command".
     */
    std::uint32_t id = 0;

    /** Geometry; owned by the workload, must outlive the frame. */
    const Mesh *mesh = nullptr;

    /** Object-to-world transform. */
    Mat4 model = Mat4::identity();

    /**
     * Draw in screen space: the model transform is interpreted in pixel
     * coordinates and projected with an orthographic pixel matrix
     * instead of the scene camera — how applications draw HUDs and
     * overlays on top of a 3D view (they swap the projection uniform).
     */
    bool screen_space = false;

    /** Color multiplier applied at vertex shading (animates attributes). */
    Vec4 tint = {1.0f, 1.0f, 1.0f, 1.0f};

    RenderState state;
};

} // namespace evrsim

#endif // EVRSIM_SCENE_DRAW_COMMAND_HPP
