/**
 * @file
 * Camera helper implementation.
 */
#include "scene/camera.hpp"

namespace evrsim {

void
setCamera2D(Scene &scene, int width, int height)
{
    // Map pixel coordinates to clip space directly. The ortho matrix maps
    // x: [0,w] -> [-1,1], y: [0,h] -> [1,-1] (top-left origin), and z so
    // that application z in [0,1] lands at depth z (0 = near).
    scene.view = Mat4::identity();
    scene.proj = Mat4::ortho(0.0f, static_cast<float>(width),
                             static_cast<float>(height), 0.0f,
                             -1.0f, 1.0f);
    // ortho maps z=-z_ndc; we want app z in [0,1] to map to depth [0,1].
    // With near=-1, far=1: z_ndc = -z_app... adjust: use a simple scale so
    // that depth = z_app after the viewport transform (depth = (z_ndc+1)/2).
    scene.proj.m[2][2] = 2.0f; // z_ndc = 2*z_app - 1  => depth = z_app
    scene.proj.m[3][2] = -1.0f;
}

void
setCamera3D(Scene &scene, const Vec3 &eye, const Vec3 &at, float fovy_deg,
            float aspect, float z_near, float z_far)
{
    constexpr float kPi = 3.14159265358979323846f;
    scene.view = Mat4::lookAt(eye, at, {0.0f, 1.0f, 0.0f});
    scene.proj = Mat4::perspective(fovy_deg * kPi / 180.0f, aspect, z_near,
                                   z_far);
}

} // namespace evrsim
