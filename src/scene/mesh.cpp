/**
 * @file
 * Procedural mesh builders.
 */
#include "scene/mesh.hpp"

#include <cmath>

#include "common/log.hpp"

namespace evrsim {

void
Mesh::append(const Mesh &other)
{
    auto base = static_cast<std::uint32_t>(vertices.size());
    vertices.insert(vertices.end(), other.vertices.begin(),
                    other.vertices.end());
    indices.reserve(indices.size() + other.indices.size());
    for (auto idx : other.indices)
        indices.push_back(base + idx);
}

namespace meshes {

Mesh
quad(const Vec4 &color)
{
    return quadCorners(color, color, color, color);
}

Mesh
quadCorners(const Vec4 &c00, const Vec4 &c10, const Vec4 &c11,
            const Vec4 &c01)
{
    Mesh m;
    m.vertices = {
        {{-0.5f, -0.5f, 0.0f}, c00, {0.0f, 0.0f}},
        {{0.5f, -0.5f, 0.0f}, c10, {1.0f, 0.0f}},
        {{0.5f, 0.5f, 0.0f}, c11, {1.0f, 1.0f}},
        {{-0.5f, 0.5f, 0.0f}, c01, {0.0f, 1.0f}},
    };
    m.indices = {0, 1, 2, 0, 2, 3};
    return m;
}

Mesh
grid(int nx, int ny, const Vec4 &color, float jitter_z, std::uint64_t seed)
{
    EVRSIM_ASSERT(nx > 0 && ny > 0);
    Mesh m;
    Rng rng(seed);
    for (int j = 0; j <= ny; ++j) {
        for (int i = 0; i <= nx; ++i) {
            float u = static_cast<float>(i) / nx;
            float v = static_cast<float>(j) / ny;
            float z = jitter_z != 0.0f
                          ? rng.nextFloat(-jitter_z, jitter_z)
                          : 0.0f;
            m.vertices.push_back({{u - 0.5f, v - 0.5f, z}, color, {u, v}});
        }
    }
    int stride = nx + 1;
    for (int j = 0; j < ny; ++j) {
        for (int i = 0; i < nx; ++i) {
            auto v00 = static_cast<std::uint32_t>(j * stride + i);
            auto v10 = v00 + 1;
            auto v01 = v00 + stride;
            auto v11 = v01 + 1;
            m.indices.insert(m.indices.end(), {v00, v10, v11});
            m.indices.insert(m.indices.end(), {v00, v11, v01});
        }
    }
    return m;
}

Mesh
box(const Vec4 &color)
{
    Mesh m;
    // Six faces with slightly different tints so orientation is visible
    // (and signatures change when the box rotates).
    struct Face {
        Vec3 origin, du, dv;
        float tint;
    };
    const Face faces[] = {
        {{-0.5f, -0.5f, 0.5f}, {1, 0, 0}, {0, 1, 0}, 1.00f},  // +Z
        {{0.5f, -0.5f, -0.5f}, {-1, 0, 0}, {0, 1, 0}, 0.75f}, // -Z
        {{0.5f, -0.5f, 0.5f}, {0, 0, -1}, {0, 1, 0}, 0.90f},  // +X
        {{-0.5f, -0.5f, -0.5f}, {0, 0, 1}, {0, 1, 0}, 0.65f}, // -X
        {{-0.5f, 0.5f, 0.5f}, {1, 0, 0}, {0, 0, -1}, 0.95f},  // +Y
        {{-0.5f, -0.5f, -0.5f}, {1, 0, 0}, {0, 0, 1}, 0.60f}, // -Y
    };
    for (const Face &f : faces) {
        auto base = static_cast<std::uint32_t>(m.vertices.size());
        Vec4 c = {color.x * f.tint, color.y * f.tint, color.z * f.tint,
                  color.w};
        m.vertices.push_back({f.origin, c, {0, 0}});
        m.vertices.push_back({f.origin + f.du, c, {1, 0}});
        m.vertices.push_back({f.origin + f.du + f.dv, c, {1, 1}});
        m.vertices.push_back({f.origin + f.dv, c, {0, 1}});
        m.indices.insert(m.indices.end(),
                         {base, base + 1, base + 2, base, base + 2, base + 3});
    }
    return m;
}

Mesh
sphere(int stacks, int slices, const Vec4 &color)
{
    EVRSIM_ASSERT(stacks >= 2 && slices >= 3);
    Mesh m;
    constexpr float kPi = 3.14159265358979323846f;
    for (int j = 0; j <= stacks; ++j) {
        float phi = kPi * j / stacks;
        for (int i = 0; i <= slices; ++i) {
            float theta = 2.0f * kPi * i / slices;
            Vec3 p = {0.5f * std::sin(phi) * std::cos(theta),
                      0.5f * std::cos(phi),
                      0.5f * std::sin(phi) * std::sin(theta)};
            // Shade poles darker so rotation changes attribute bytes.
            float shade = 0.6f + 0.4f * std::sin(phi);
            Vec4 c = {color.x * shade, color.y * shade, color.z * shade,
                      color.w};
            m.vertices.push_back(
                {p, c,
                 {static_cast<float>(i) / slices,
                  static_cast<float>(j) / stacks}});
        }
    }
    int stride = slices + 1;
    for (int j = 0; j < stacks; ++j) {
        for (int i = 0; i < slices; ++i) {
            auto v00 = static_cast<std::uint32_t>(j * stride + i);
            auto v10 = v00 + 1;
            auto v01 = v00 + stride;
            auto v11 = v01 + 1;
            m.indices.insert(m.indices.end(), {v00, v11, v10});
            m.indices.insert(m.indices.end(), {v00, v01, v11});
        }
    }
    return m;
}

Mesh
character(std::uint64_t seed, const Vec4 &tint)
{
    Rng rng(seed);
    Mesh m;

    auto add_part = [&](const Vec3 &center, const Vec3 &size, float shade) {
        Mesh part = box({tint.x * shade, tint.y * shade, tint.z * shade,
                         tint.w});
        for (auto &v : part.vertices) {
            v.position = v.position * size + center;
        }
        m.append(part);
    };

    float torso_h = rng.nextFloat(0.35f, 0.5f);
    float torso_w = rng.nextFloat(0.2f, 0.35f);
    float head_r = rng.nextFloat(0.1f, 0.16f);
    float leg_h = rng.nextFloat(0.25f, 0.4f);

    add_part({0.0f, leg_h + torso_h * 0.5f, 0.0f},
             {torso_w, torso_h, torso_w * 0.6f}, 1.0f);
    add_part({0.0f, leg_h + torso_h + head_r, 0.0f},
             {head_r * 2, head_r * 2, head_r * 2}, 0.9f);
    add_part({-torso_w * 0.3f, leg_h * 0.5f, 0.0f},
             {torso_w * 0.3f, leg_h, torso_w * 0.3f}, 0.7f);
    add_part({torso_w * 0.3f, leg_h * 0.5f, 0.0f},
             {torso_w * 0.3f, leg_h, torso_w * 0.3f}, 0.7f);
    add_part({-torso_w * 0.65f, leg_h + torso_h * 0.7f, 0.0f},
             {torso_w * 0.25f, torso_h * 0.8f, torso_w * 0.25f}, 0.8f);
    add_part({torso_w * 0.65f, leg_h + torso_h * 0.7f, 0.0f},
             {torso_w * 0.25f, torso_h * 0.8f, torso_w * 0.25f}, 0.8f);
    return m;
}

} // namespace meshes

} // namespace evrsim
