/**
 * @file
 * Camera helpers for the two scene styles the benchmarks use.
 */
#ifndef EVRSIM_SCENE_CAMERA_HPP
#define EVRSIM_SCENE_CAMERA_HPP

#include "common/mat4.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/**
 * Set up @p scene with a 2D pixel-space camera: x in [0, width), y in
 * [0, height) with y growing downwards, z passed through to [0, 1]
 * (smaller = nearer). 2D painter's-algorithm workloads position sprites
 * directly in pixels.
 */
void setCamera2D(Scene &scene, int width, int height);

/**
 * Set up @p scene with a perspective 3D camera.
 *
 * @param fovy_deg vertical field of view in degrees
 * @param aspect   width / height of the render target
 */
void setCamera3D(Scene &scene, const Vec3 &eye, const Vec3 &at,
                 float fovy_deg, float aspect, float z_near = 0.1f,
                 float z_far = 100.0f);

} // namespace evrsim

#endif // EVRSIM_SCENE_CAMERA_HPP
