/**
 * @file
 * Animation helper implementation.
 */
#include "scene/animation.hpp"

#include <cmath>

namespace evrsim {
namespace anim {

namespace {
constexpr float kTwoPi = 6.28318530717958647692f;
}

float
oscillate(float center, float amplitude, float period, int frame, float phase)
{
    return center + amplitude * std::sin(kTwoPi * frame / period + phase);
}

float
sawtooth(float from, float to, float period, int frame)
{
    float t = std::fmod(static_cast<float>(frame), period) / period;
    return from + (to - from) * t;
}

float
pingPong(float from, float to, float period, int frame)
{
    float t = std::fmod(static_cast<float>(frame), 2.0f * period) / period;
    if (t > 1.0f)
        t = 2.0f - t;
    return from + (to - from) * t;
}

Vec3
orbitXZ(const Vec3 &center, float radius, float period, int frame,
        float phase)
{
    float a = kTwoPi * frame / period + phase;
    return {center.x + radius * std::cos(a), center.y,
            center.z + radius * std::sin(a)};
}

float
spin(float period, int frame, float phase)
{
    return kTwoPi * frame / period + phase;
}

Mat4
spriteAt(float x, float y, float w, float h, float z)
{
    return Mat4::translate({x, y, z}) * Mat4::scale({w, h, 1.0f});
}

} // namespace anim
} // namespace evrsim
