/**
 * @file
 * Procedural texture implementation (cold parts; the per-fragment
 * sampling path is inline in the header).
 */
#include "scene/texture.hpp"

namespace evrsim {

namespace {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Texture::Texture(TextureKind kind, int size, const Vec4 &a, const Vec4 &b,
                 std::uint64_t seed, int cells)
    : kind_(kind), size_(size), cells_(cells), color_a_(a), color_b_(b),
      seed_(seed)
{
    EVRSIM_ASSERT(isPowerOfTwo(size_));
    EVRSIM_ASSERT(cells_ > 0);
}

std::uint64_t
Texture::contentKey() const
{
    std::uint64_t key = seed_ * 0x9e3779b97f4a7c15ull;
    key ^= static_cast<std::uint64_t>(kind_) << 56;
    key ^= static_cast<std::uint64_t>(size_) << 40;
    key ^= static_cast<std::uint64_t>(cells_) << 24;
    key ^= toRgba8(color_a_).packed();
    key ^= static_cast<std::uint64_t>(toRgba8(color_b_).packed()) << 16;
    return key;
}

} // namespace evrsim
