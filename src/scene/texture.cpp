/**
 * @file
 * Procedural texture implementation.
 */
#include "scene/texture.hpp"

#include <cmath>

#include "common/log.hpp"

namespace evrsim {

namespace {

/** 2D integer hash -> [0, 1) float (deterministic value noise). */
float
hashNoise(std::uint64_t seed, int x, int y)
{
    std::uint64_t h = seed;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
         0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
         0xd6e8feb86659fd93ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<float>(h >> 40) * (1.0f / 16777216.0f);
}

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Texture::Texture(TextureKind kind, int size, const Vec4 &a, const Vec4 &b,
                 std::uint64_t seed, int cells)
    : kind_(kind), size_(size), cells_(cells), color_a_(a), color_b_(b),
      seed_(seed)
{
    EVRSIM_ASSERT(isPowerOfTwo(size_));
    EVRSIM_ASSERT(cells_ > 0);
}

void
Texture::toTexel(float u, float v, int &x, int &y) const
{
    // GL_REPEAT wrapping, nearest filtering.
    float fu = u - std::floor(u);
    float fv = v - std::floor(v);
    x = static_cast<int>(fu * size_) & (size_ - 1);
    y = static_cast<int>(fv * size_) & (size_ - 1);
}

Vec4
Texture::texel(int x, int y) const
{
    switch (kind_) {
      case TextureKind::Solid:
        return color_a_;
      case TextureKind::Checker: {
        int cx = x * cells_ / size_;
        int cy = y * cells_ / size_;
        return ((cx + cy) & 1) ? color_b_ : color_a_;
      }
      case TextureKind::Gradient: {
        float t = static_cast<float>(y) / (size_ - 1);
        return lerp(color_a_, color_b_, t);
      }
      case TextureKind::Noise: {
        int cx = x * cells_ / size_;
        int cy = y * cells_ / size_;
        float n = hashNoise(seed_, cx, cy);
        return lerp(color_a_, color_b_, n);
      }
      case TextureKind::Stripes: {
        int cy = y * cells_ / size_;
        return (cy & 1) ? color_b_ : color_a_;
      }
    }
    panic("invalid texture kind %d", static_cast<int>(kind_));
}

Vec4
Texture::sample(float u, float v) const
{
    int x, y;
    toTexel(u, v, x, y);
    return texel(x, y);
}

Addr
Texture::texelAddr(float u, float v) const
{
    int x, y;
    toTexel(u, v, x, y);
    return base_ + (static_cast<Addr>(y) * size_ + x) * 4;
}

std::uint64_t
Texture::contentKey() const
{
    std::uint64_t key = seed_ * 0x9e3779b97f4a7c15ull;
    key ^= static_cast<std::uint64_t>(kind_) << 56;
    key ^= static_cast<std::uint64_t>(size_) << 40;
    key ^= static_cast<std::uint64_t>(cells_) << 24;
    key ^= toRgba8(color_a_).packed();
    key ^= static_cast<std::uint64_t>(toRgba8(color_b_).packed()) << 16;
    return key;
}

} // namespace evrsim
