/**
 * @file
 * Small deterministic animation helpers shared by workloads and examples.
 *
 * All helpers are pure functions of (parameters, frame index) so that a
 * workload's frame N is identical no matter how many frames were generated
 * before it — a requirement for the result cache and for reproducibility.
 */
#ifndef EVRSIM_SCENE_ANIMATION_HPP
#define EVRSIM_SCENE_ANIMATION_HPP

#include "common/mat4.hpp"

namespace evrsim {
namespace anim {

/** Sine oscillation: center +- amplitude, @p period frames per cycle. */
float oscillate(float center, float amplitude, float period, int frame,
                float phase = 0.0f);

/** Linear interpolation along a segment, wrapping every @p period frames. */
float sawtooth(float from, float to, float period, int frame);

/** Ping-pong interpolation between two values. */
float pingPong(float from, float to, float period, int frame);

/** Circular orbit in the XZ plane around @p center. */
Vec3 orbitXZ(const Vec3 &center, float radius, float period, int frame,
             float phase = 0.0f);

/** Uniform spin (radians) completing a turn every @p period frames. */
float spin(float period, int frame, float phase = 0.0f);

/**
 * Model matrix for a screen-space sprite: a unit quad scaled to
 * (w x h) pixels with its center at (x, y) and depth z.
 */
Mat4 spriteAt(float x, float y, float w, float h, float z);

} // namespace anim
} // namespace evrsim

#endif // EVRSIM_SCENE_ANIMATION_HPP
