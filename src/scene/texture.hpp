/**
 * @file
 * Procedural textures mapped into the simulated address space.
 *
 * Texture *contents* are computed on the fly from a deterministic
 * generator (no image assets are needed), but every texel has a simulated
 * address, so the texture caches observe the same locality a stored
 * RGBA8 texture would produce.
 */
#ifndef EVRSIM_SCENE_TEXTURE_HPP
#define EVRSIM_SCENE_TEXTURE_HPP

#include <cstdint>
#include <vector>

#include "common/color.hpp"
#include "common/vec.hpp"
#include "mem/mem_types.hpp"

namespace evrsim {

/** Procedural texture families. */
enum class TextureKind : std::uint8_t {
    Solid,    ///< single color (cheap UI fills)
    Checker,  ///< two-color checkerboard
    Gradient, ///< vertical gradient between two colors
    Noise,    ///< hash-based value noise (organic surfaces)
    Stripes,  ///< horizontal stripes (HUD bars, decals)
};

/** One texture: generator parameters plus its simulated placement. */
class Texture
{
  public:
    /**
     * @param kind   generator family
     * @param size   width=height, must be a power of two
     * @param a      primary color
     * @param b      secondary color (ignored by Solid)
     * @param seed   deterministic seed for Noise
     * @param cells  feature scale (checker squares, stripe count, noise
     *               cell count)
     */
    Texture(TextureKind kind, int size, const Vec4 &a, const Vec4 &b,
            std::uint64_t seed = 0, int cells = 8);

    /** Sample with nearest filtering; uv wraps (GL_REPEAT). */
    Vec4 sample(float u, float v) const;

    /** Simulated address of the texel that (u, v) maps to. */
    Addr texelAddr(float u, float v) const;

    int size() const { return size_; }
    std::uint64_t byteSize() const
    {
        return static_cast<std::uint64_t>(size_) * size_ * 4;
    }

    Addr base() const { return base_; }
    void setBase(Addr base) { base_ = base; }

    /** Generator identity bytes, hashed into RE signatures. */
    std::uint64_t contentKey() const;

  private:
    /** Integer texel lookup (x, y already wrapped). */
    Vec4 texel(int x, int y) const;

    /** Map (u, v) to wrapped integer texel coordinates. */
    void toTexel(float u, float v, int &x, int &y) const;

    TextureKind kind_;
    int size_;
    int cells_;
    Vec4 color_a_;
    Vec4 color_b_;
    std::uint64_t seed_;
    Addr base_ = 0;
};

} // namespace evrsim

#endif // EVRSIM_SCENE_TEXTURE_HPP
