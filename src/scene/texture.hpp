/**
 * @file
 * Procedural textures mapped into the simulated address space.
 *
 * Texture *contents* are computed on the fly from a deterministic
 * generator (no image assets are needed), but every texel has a simulated
 * address, so the texture caches observe the same locality a stored
 * RGBA8 texture would produce.
 */
#ifndef EVRSIM_SCENE_TEXTURE_HPP
#define EVRSIM_SCENE_TEXTURE_HPP

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/color.hpp"
#include "common/log.hpp"
#include "common/vec.hpp"
#include "mem/mem_types.hpp"

namespace evrsim {

namespace texture_detail {

/**
 * 2D integer hash -> [0, 1) float (deterministic value noise). Header
 * visible so Texture::texel can inline into fragment shading.
 */
inline float
hashNoise(std::uint64_t seed, int x, int y)
{
    std::uint64_t h = seed;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) *
         0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) *
         0xd6e8feb86659fd93ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<float>(h >> 40) * (1.0f / 16777216.0f);
}

} // namespace texture_detail

/** Procedural texture families. */
enum class TextureKind : std::uint8_t {
    Solid,    ///< single color (cheap UI fills)
    Checker,  ///< two-color checkerboard
    Gradient, ///< vertical gradient between two colors
    Noise,    ///< hash-based value noise (organic surfaces)
    Stripes,  ///< horizontal stripes (HUD bars, decals)
};

/** One texture: generator parameters plus its simulated placement. */
class Texture
{
  public:
    /**
     * @param kind   generator family
     * @param size   width=height, must be a power of two
     * @param a      primary color
     * @param b      secondary color (ignored by Solid)
     * @param seed   deterministic seed for Noise
     * @param cells  feature scale (checker squares, stripe count, noise
     *               cell count)
     */
    Texture(TextureKind kind, int size, const Vec4 &a, const Vec4 &b,
            std::uint64_t seed = 0, int cells = 8);

    /**
     * Sample with nearest filtering; uv wraps (GL_REPEAT). Defined in
     * the header (along with the texel helpers below) because it runs
     * once per textured fragment and the build has no LTO to inline it
     * across translation units.
     */
    Vec4
    sample(float u, float v) const
    {
        int x, y;
        toTexel(u, v, x, y);
        return texel(x, y);
    }

    /** Simulated address of the texel that (u, v) maps to. */
    Addr
    texelAddr(float u, float v) const
    {
        int x, y;
        toTexel(u, v, x, y);
        return texelAddrAt(x, y);
    }

    /**
     * Map (u, v) to wrapped integer texel coordinates. Public together
     * with the *At accessors so the shader core can wrap a fragment's
     * UV once and reuse the coordinates for both the simulated fetch
     * address and the color lookup.
     */
    void
    toTexel(float u, float v, int &x, int &y) const
    {
        // GL_REPEAT wrapping, nearest filtering.
        float fu = u - std::floor(u);
        float fv = v - std::floor(v);
        x = static_cast<int>(fu * size_) & (size_ - 1);
        y = static_cast<int>(fv * size_) & (size_ - 1);
    }

    /** Color of the texel at wrapped integer coordinates. */
    Vec4 texelAt(int x, int y) const { return texel(x, y); }

    /** Simulated address of the texel at wrapped integer coordinates. */
    Addr
    texelAddrAt(int x, int y) const
    {
        return base_ + (static_cast<Addr>(y) * size_ + x) * 4;
    }

    int size() const { return size_; }
    std::uint64_t byteSize() const
    {
        return static_cast<std::uint64_t>(size_) * size_ * 4;
    }

    Addr base() const { return base_; }
    void setBase(Addr base) { base_ = base; }

    /** Generator identity bytes, hashed into RE signatures. */
    std::uint64_t contentKey() const;

  private:
    /** Integer texel lookup (x, y already wrapped). */
    Vec4
    texel(int x, int y) const
    {
        switch (kind_) {
          case TextureKind::Solid:
            return color_a_;
          case TextureKind::Checker: {
            int cx = x * cells_ / size_;
            int cy = y * cells_ / size_;
            return ((cx + cy) & 1) ? color_b_ : color_a_;
          }
          case TextureKind::Gradient: {
            float t = static_cast<float>(y) / (size_ - 1);
            return lerp(color_a_, color_b_, t);
          }
          case TextureKind::Noise: {
            int cx = x * cells_ / size_;
            int cy = y * cells_ / size_;
            float n = texture_detail::hashNoise(seed_, cx, cy);
            return lerp(color_a_, color_b_, n);
          }
          case TextureKind::Stripes: {
            int cy = y * cells_ / size_;
            return (cy & 1) ? color_b_ : color_a_;
          }
        }
        panic("invalid texture kind %d", static_cast<int>(kind_));
    }

    TextureKind kind_;
    int size_;
    int cells_;
    Vec4 color_a_;
    Vec4 color_b_;
    std::uint64_t seed_;
    Addr base_ = 0;
};

} // namespace evrsim

#endif // EVRSIM_SCENE_TEXTURE_HPP
