/**
 * @file
 * Unit tests for the memory hierarchy: DRAM model, set-associative
 * caches (hits, LRU replacement, write-back), the Table II wiring and
 * the simulated address space.
 */
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/memory_system.hpp"

using namespace evrsim;

// --------------------------------------------------------------- DRAM --

TEST(Dram, FirstAccessIsRowMissSecondIsHit)
{
    DramModel dram;
    AccessResult first = dram.access(0x1000, 64, false,
                                     TrafficClass::Texture);
    AccessResult second = dram.access(0x1040, 64, false,
                                      TrafficClass::Texture);
    EXPECT_GT(first.latency, second.latency);
    EXPECT_EQ(dram.stats().row_misses, 1u);
    EXPECT_EQ(dram.stats().row_hits, 1u);
}

TEST(Dram, LatencyIncludesTransferTime)
{
    DramConfig cfg;
    cfg.row_hit_latency = 10;
    cfg.row_miss_latency = 20;
    cfg.bytes_per_cycle = 4;
    DramModel dram(cfg);
    // 64 bytes at 4 B/cycle = 16 transfer cycles + 20 miss latency.
    EXPECT_EQ(dram.access(0, 64, false, TrafficClass::Other).latency, 36u);
}

TEST(Dram, TrafficIsClassified)
{
    DramModel dram;
    dram.access(0, 100, false, TrafficClass::Texture);
    dram.access(0x100000, 50, true, TrafficClass::Framebuffer);
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.read_bytes[static_cast<int>(TrafficClass::Texture)], 100u);
    EXPECT_EQ(s.write_bytes[static_cast<int>(TrafficClass::Framebuffer)],
              50u);
    EXPECT_EQ(s.totalBytes(), 150u);
}

TEST(Dram, DistinctRowsConflictInSameBank)
{
    DramConfig cfg;
    cfg.channels = 1;
    cfg.banks_per_channel = 1;
    cfg.row_bytes = 1024;
    DramModel dram(cfg);
    dram.access(0, 4, false, TrafficClass::Other);       // opens row 0
    dram.access(0, 4, false, TrafficClass::Other);       // row hit
    dram.access(4096, 4, false, TrafficClass::Other);    // row conflict
    EXPECT_EQ(dram.stats().row_hits, 1u);
    EXPECT_EQ(dram.stats().row_misses, 2u);
}

TEST(Dram, StatsAccumulate)
{
    DramStats a, b;
    a.read_bytes[0] = 10;
    a.accesses = 1;
    b.read_bytes[0] = 5;
    b.accesses = 2;
    b.bus_busy_cycles = 7;
    a.accumulate(b);
    EXPECT_EQ(a.read_bytes[0], 15u);
    EXPECT_EQ(a.accesses, 3u);
    EXPECT_EQ(a.bus_busy_cycles, 7u);
}

// -------------------------------------------------------------- Cache --

namespace {

CacheConfig
smallCache(unsigned size, unsigned ways)
{
    CacheConfig c;
    c.name = "test";
    c.size_bytes = size;
    c.line_bytes = 64;
    c.ways = ways;
    c.hit_latency = 1;
    return c;
}

} // namespace

TEST(Cache, MissThenHit)
{
    DramModel dram;
    SetAssocCache cache(smallCache(1024, 2), &dram);
    AccessResult miss = cache.access(0, 4, false, TrafficClass::Texture);
    AccessResult hit = cache.access(0, 4, false, TrafficClass::Texture);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(hit.hit);
    EXPECT_GT(miss.latency, hit.latency);
    EXPECT_EQ(hit.latency, 1u);
    EXPECT_EQ(cache.stats().read_misses, 1u);
    EXPECT_EQ(cache.stats().reads, 2u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    DramModel dram;
    SetAssocCache cache(smallCache(1024, 2), &dram);
    cache.access(0, 4, false, TrafficClass::Other);
    EXPECT_TRUE(cache.access(60, 4, false, TrafficClass::Other).hit);
}

TEST(Cache, RequestSpanningTwoLinesTouchesBoth)
{
    DramModel dram;
    SetAssocCache cache(smallCache(1024, 2), &dram);
    cache.access(60, 8, false, TrafficClass::Other); // spans lines 0 and 1
    EXPECT_EQ(cache.stats().reads, 2u);
    EXPECT_EQ(cache.stats().read_misses, 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 64 B lines, 2 sets -> conflicting addresses are multiples
    // of 128.
    DramModel dram;
    SetAssocCache cache(smallCache(256, 2), &dram);
    cache.access(0, 4, false, TrafficClass::Other);    // A -> set 0
    cache.access(128, 4, false, TrafficClass::Other);  // B -> set 0
    cache.access(0, 4, false, TrafficClass::Other);    // touch A (B is LRU)
    cache.access(256, 4, false, TrafficClass::Other);  // C evicts B
    EXPECT_TRUE(cache.access(0, 4, false, TrafficClass::Other).hit);
    EXPECT_FALSE(cache.access(128, 4, false, TrafficClass::Other).hit);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    DramModel dram;
    SetAssocCache cache(smallCache(128, 1), &dram); // 2 sets, direct-mapped
    cache.access(0, 4, true, TrafficClass::Other);   // dirty line in set 0
    cache.access(128, 4, false, TrafficClass::Other); // evicts dirty line
    EXPECT_EQ(cache.stats().writebacks, 1u);
    // The write-back reached DRAM as a write.
    EXPECT_GT(dram.stats().totalWriteBytes(), 0u);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    DramModel dram;
    SetAssocCache cache(smallCache(128, 1), &dram);
    cache.access(0, 4, false, TrafficClass::Other);
    cache.access(128, 4, false, TrafficClass::Other);
    EXPECT_EQ(cache.stats().writebacks, 0u);
    EXPECT_EQ(dram.stats().totalWriteBytes(), 0u);
}

TEST(Cache, WriteAllocateFetchesLine)
{
    DramModel dram;
    SetAssocCache cache(smallCache(1024, 2), &dram);
    cache.access(0, 4, true, TrafficClass::Other);
    // The line was fetched (read traffic), then dirtied.
    EXPECT_GT(dram.stats().totalReadBytes(), 0u);
    EXPECT_TRUE(cache.access(0, 4, false, TrafficClass::Other).hit);
}

TEST(Cache, FlushWritesDirtyLinesAndInvalidates)
{
    DramModel dram;
    SetAssocCache cache(smallCache(1024, 2), &dram);
    cache.access(0, 4, true, TrafficClass::Other);
    cache.access(64, 4, false, TrafficClass::Other);
    cache.flush(TrafficClass::Other);
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_FALSE(cache.access(0, 4, false, TrafficClass::Other).hit);
}

TEST(Cache, TwoLevelMissPropagates)
{
    DramModel dram;
    SetAssocCache l2(smallCache(4096, 4), &dram);
    SetAssocCache l1(smallCache(512, 2), &l2);
    l1.access(0, 4, false, TrafficClass::Texture);
    EXPECT_EQ(l2.stats().reads, 1u);
    EXPECT_EQ(dram.stats().accesses, 1u);
    // L1 hit: no L2 traffic.
    l1.access(0, 4, false, TrafficClass::Texture);
    EXPECT_EQ(l2.stats().reads, 1u);
    // L1 conflict miss that hits in L2: no extra DRAM traffic.
    l1.access(512, 4, false, TrafficClass::Texture);
    l1.access(1024, 4, false, TrafficClass::Texture); // evicts 0 from L1
    l1.access(0, 4, false, TrafficClass::Texture);    // L2 hit
    EXPECT_EQ(dram.stats().accesses, 3u);
}

TEST(Cache, MissRatioComputation)
{
    CacheStats s;
    s.reads = 8;
    s.writes = 2;
    s.read_misses = 3;
    s.write_misses = 2;
    EXPECT_DOUBLE_EQ(s.missRatio(), 0.5);
    CacheStats empty;
    EXPECT_DOUBLE_EQ(empty.missRatio(), 0.0);
}

// ------------------------------------------------------- MemorySystem --

TEST(MemorySystem, RoutesTrafficToConfiguredCaches)
{
    MemorySystem mem;
    mem.vertexFetch(AddressSpace::kVertexBase, 36);
    mem.textureFetch(0, AddressSpace::kTextureBase, 4);
    mem.parameterRead(AddressSpace::kParameterBase, 4);

    MemorySystemStats s = mem.stats();
    EXPECT_EQ(s.vertex_cache.reads, 1u);
    EXPECT_EQ(s.texture_caches.reads, 1u);
    EXPECT_EQ(s.tile_cache.reads, 1u);
    // All three missed into L2.
    EXPECT_EQ(s.l2_cache.reads, 3u);
}

TEST(MemorySystem, TextureCachesArePrivatePerUnit)
{
    MemorySystem mem;
    mem.textureFetch(0, 0x1000, 4);
    // A different unit does not see unit 0's line.
    EXPECT_FALSE(mem.textureFetch(1, 0x1000, 4).hit);
    // But unit 0 does.
    EXPECT_TRUE(mem.textureFetch(0, 0x1000, 4).hit);
}

TEST(MemorySystem, FramebufferWritesBypassCaches)
{
    MemorySystem mem;
    mem.framebufferWrite(AddressSpace::kFramebufferBase, 64);
    MemorySystemStats s = mem.stats();
    EXPECT_EQ(s.l2_cache.accesses(), 0u);
    EXPECT_EQ(s.tile_cache.accesses(), 0u);
    EXPECT_EQ(
        s.dram.write_bytes[static_cast<int>(TrafficClass::Framebuffer)],
        64u);
}

TEST(MemorySystem, ClearStatsZeroesCounters)
{
    MemorySystem mem;
    mem.vertexFetch(0, 36);
    mem.clearStats();
    EXPECT_EQ(mem.stats().vertex_cache.accesses(), 0u);
    EXPECT_EQ(mem.stats().dram.totalBytes(), 0u);
}

TEST(MemorySystem, DefaultConfigMatchesTableII)
{
    MemorySystemConfig cfg;
    EXPECT_EQ(cfg.vertex_cache.size_bytes, 4u * 1024);
    EXPECT_EQ(cfg.vertex_cache.ways, 2u);
    EXPECT_EQ(cfg.texture_cache.size_bytes, 8u * 1024);
    EXPECT_EQ(cfg.num_texture_caches, 4u);
    EXPECT_EQ(cfg.tile_cache.size_bytes, 128u * 1024);
    EXPECT_EQ(cfg.tile_cache.ways, 8u);
    EXPECT_EQ(cfg.l2_cache.size_bytes, 256u * 1024);
    EXPECT_EQ(cfg.l2_cache.hit_latency, 2u);
    EXPECT_EQ(cfg.dram.bytes_per_cycle, 4u);
    EXPECT_EQ(cfg.dram.row_hit_latency, 50u);
    EXPECT_EQ(cfg.dram.row_miss_latency, 100u);
}

// ------------------------------------------------------- AddressSpace --

TEST(AddressSpace, AllocationsAreDisjointAndNonNull)
{
    AddressSpace as;
    Addr a = as.allocVertex(100);
    Addr b = as.allocVertex(100);
    EXPECT_NE(a, 0u);
    EXPECT_GE(b, a + 100);
}

TEST(AddressSpace, RegionsDoNotOverlap)
{
    AddressSpace as;
    Addr v = as.allocVertex(1000);
    Addr t = as.allocTexture(1000);
    Addr p = as.allocParameter(1000);
    EXPECT_LT(v, AddressSpace::kTextureBase);
    EXPECT_GE(t, AddressSpace::kTextureBase);
    EXPECT_LT(t, AddressSpace::kParameterBase);
    EXPECT_GE(p, AddressSpace::kParameterBase);
}

TEST(AddressSpace, ParameterRegionResets)
{
    AddressSpace as;
    Addr first = as.allocParameter(64);
    as.allocParameter(4096);
    as.resetParameter();
    EXPECT_EQ(as.allocParameter(64), first);
}

TEST(AddressSpace, AllocationsAreLineAligned)
{
    AddressSpace as;
    as.allocVertex(10);
    Addr second = as.allocVertex(10);
    EXPECT_EQ(second % 64, 0u);
}

TEST(AddressSpace, FramebufferAddressing)
{
    Addr a0 = AddressSpace::framebufferAddr(0, 0, 100);
    Addr a1 = AddressSpace::framebufferAddr(1, 0, 100);
    Addr a_row = AddressSpace::framebufferAddr(0, 1, 100);
    EXPECT_EQ(a1 - a0, 4u);
    EXPECT_EQ(a_row - a0, 400u);
}
