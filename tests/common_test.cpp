/**
 * @file
 * Unit tests for the common substrate: vectors, matrices, CRC32 (with
 * the combine identity RE depends on), the deterministic PRNG, color
 * quantization and rectangles.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/color.hpp"
#include "common/crc32.hpp"
#include "common/mat4.hpp"
#include "common/rect.hpp"
#include "common/rng.hpp"
#include "common/vec.hpp"

using namespace evrsim;

// ---------------------------------------------------------------- Vec --

TEST(Vec, DotAndCrossFollowHandRules)
{
    Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
    EXPECT_FLOAT_EQ(x.dot(y), 0.0f);
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
}

TEST(Vec, NormalizedHasUnitLength)
{
    Vec3 v{3.0f, 4.0f, 12.0f};
    EXPECT_NEAR(v.normalized().length(), 1.0f, 1e-6f);
}

TEST(Vec, NormalizedZeroVectorFallsBackToX)
{
    Vec3 v{0, 0, 0};
    EXPECT_EQ(v.normalized(), (Vec3{1, 0, 0}));
}

TEST(Vec, LerpEndpointsAndMidpoint)
{
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 0.0f), 2.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 1.0f), 6.0f);
    EXPECT_FLOAT_EQ(lerp(2.0f, 6.0f, 0.5f), 4.0f);
    Vec4 a{0, 0, 0, 0}, b{1, 2, 3, 4};
    EXPECT_EQ(lerp(a, b, 0.5f), (Vec4{0.5f, 1.0f, 1.5f, 2.0f}));
}

TEST(Vec, ClampBehaviour)
{
    EXPECT_FLOAT_EQ(clampf(-1.0f, 0.0f, 1.0f), 0.0f);
    EXPECT_FLOAT_EQ(clampf(2.0f, 0.0f, 1.0f), 1.0f);
    EXPECT_EQ(clampi(7, 0, 5), 5);
    EXPECT_EQ(clampi(-7, 0, 5), 0);
    EXPECT_EQ(clampi(3, 0, 5), 3);
}

// --------------------------------------------------------------- Mat4 --

TEST(Mat4, IdentityIsMultiplicativeNeutral)
{
    Mat4 m = Mat4::translate({1, 2, 3}) * Mat4::rotateY(0.7f);
    EXPECT_EQ(m * Mat4::identity(), m);
    EXPECT_EQ(Mat4::identity() * m, m);
}

TEST(Mat4, TranslateMovesPoints)
{
    Vec4 p = Mat4::translate({1, 2, 3}).transformPoint({10, 20, 30});
    EXPECT_EQ(p.xyz(), (Vec3{11, 22, 33}));
    EXPECT_FLOAT_EQ(p.w, 1.0f);
}

TEST(Mat4, TranslateIgnoresDirections)
{
    Vec3 d = Mat4::translate({5, 5, 5}).transformDir({1, 0, 0});
    EXPECT_EQ(d, (Vec3{1, 0, 0}));
}

TEST(Mat4, RotationsPreserveLengthAndFollowRightHandRule)
{
    // Rotating +X by 90 degrees around Z yields +Y.
    Vec3 r = Mat4::rotateZ(1.57079632679f).transformDir({1, 0, 0});
    EXPECT_NEAR(r.x, 0.0f, 1e-6f);
    EXPECT_NEAR(r.y, 1.0f, 1e-6f);
    // Rotating +Y by 90 degrees around X yields +Z.
    Vec3 r2 = Mat4::rotateX(1.57079632679f).transformDir({0, 1, 0});
    EXPECT_NEAR(r2.z, 1.0f, 1e-6f);
    // Rotating +Z by 90 degrees around Y yields +X.
    Vec3 r3 = Mat4::rotateY(1.57079632679f).transformDir({0, 0, 1});
    EXPECT_NEAR(r3.x, 1.0f, 1e-6f);
}

TEST(Mat4, CompositionAppliesRightmostFirst)
{
    Mat4 tr = Mat4::translate({10, 0, 0}) * Mat4::scale({2, 2, 2});
    // Scale first, then translate.
    EXPECT_EQ(tr.transformPoint({1, 0, 0}).xyz(), (Vec3{12, 0, 0}));
}

TEST(Mat4, PerspectiveMapsNearAndFarPlanes)
{
    Mat4 p = Mat4::perspective(1.0f, 1.0f, 1.0f, 100.0f);
    // A point on the near plane maps to z_ndc = -1.
    Vec4 near = p.transformPoint({0, 0, -1.0f});
    EXPECT_NEAR(near.z / near.w, -1.0f, 1e-5f);
    // A point on the far plane maps to z_ndc = +1.
    Vec4 far = p.transformPoint({0, 0, -100.0f});
    EXPECT_NEAR(far.z / far.w, 1.0f, 1e-4f);
}

TEST(Mat4, LookAtMapsEyeToOriginFacingMinusZ)
{
    Mat4 v = Mat4::lookAt({0, 0, 10}, {0, 0, 0}, {0, 1, 0});
    Vec4 eye = v.transformPoint({0, 0, 10});
    EXPECT_NEAR(eye.x, 0.0f, 1e-5f);
    EXPECT_NEAR(eye.y, 0.0f, 1e-5f);
    EXPECT_NEAR(eye.z, 0.0f, 1e-5f);
    // The look target lies straight ahead (negative Z in view space).
    Vec4 target = v.transformPoint({0, 0, 0});
    EXPECT_LT(target.z, 0.0f);
}

TEST(Mat4, OrthoMapsCornersToClipCube)
{
    Mat4 o = Mat4::ortho(0, 100, 50, 0, -1, 1);
    Vec4 tl = o.transformPoint({0, 0, 0});
    EXPECT_NEAR(tl.x, -1.0f, 1e-6f);
    EXPECT_NEAR(tl.y, 1.0f, 1e-6f);
    Vec4 br = o.transformPoint({100, 50, 0});
    EXPECT_NEAR(br.x, 1.0f, 1e-6f);
    EXPECT_NEAR(br.y, -1.0f, 1e-6f);
}

// -------------------------------------------------------------- Crc32 --

TEST(Crc32, MatchesKnownVector)
{
    // Standard test vector: crc32("123456789") = 0xcbf43926.
    EXPECT_EQ(Crc32::of("123456789", 9), 0xcbf43926u);
}

TEST(Crc32, EmptyInputIsZero)
{
    Crc32 h;
    EXPECT_EQ(h.value(), 0u);
    EXPECT_EQ(h.length(), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const char *text = "the graphics pipeline renders tiles";
    std::size_t len = std::strlen(text);
    Crc32 h;
    h.update(text, 10);
    h.update(text + 10, len - 10);
    EXPECT_EQ(h.value(), Crc32::of(text, len));
    EXPECT_EQ(h.length(), len);
}

TEST(Crc32, CombineEqualsConcatenation)
{
    std::string a = "per-tile display list";
    std::string b = "primitive attribute block";
    std::uint32_t crc_a = Crc32::of(a.data(), a.size());
    std::uint32_t crc_b = Crc32::of(b.data(), b.size());
    std::string ab = a + b;
    EXPECT_EQ(Crc32::combine(crc_a, crc_b, b.size()),
              Crc32::of(ab.data(), ab.size()));
}

TEST(Crc32, CombineWithEmptyBlockIsIdentity)
{
    std::uint32_t crc = Crc32::of("xyz", 3);
    EXPECT_EQ(Crc32::combine(crc, 0, 0), crc);
}

TEST(Crc32, SliceBoundariesMatchByteAtATime)
{
    // Exercise every alignment of the 8-byte fast fold against a
    // bytewise reference, including lengths below, at and above the
    // slice width.
    std::vector<unsigned char> data(41);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<unsigned char>(i * 37 + 11);
    for (std::size_t len = 0; len <= data.size(); ++len) {
        std::uint32_t ref = 0xffffffffu;
        for (std::size_t i = 0; i < len; ++i) {
            ref ^= data[i];
            for (int k = 0; k < 8; ++k)
                ref = (ref & 1u) ? (0xedb88320u ^ (ref >> 1)) : (ref >> 1);
        }
        ref ^= 0xffffffffu;
        EXPECT_EQ(Crc32::of(data.data(), len), ref) << "len=" << len;
    }
}

TEST(Crc32, CombineOperatorCacheIsStable)
{
    // combine() memoizes the zero operator per block length; repeated
    // combines at the same length (the Signature Buffer's access
    // pattern) must keep producing the concatenation CRC.
    std::string a = "first block", b = "second block!";
    std::string ab = a + b;
    std::uint32_t want = Crc32::of(ab.data(), ab.size());
    std::uint32_t crc_a = Crc32::of(a.data(), a.size());
    std::uint32_t crc_b = Crc32::of(b.data(), b.size());
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(Crc32::combine(crc_a, crc_b, b.size()), want);
}

/** Property sweep: combine() == concatenation for random block splits. */
class CrcCombineProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CrcCombineProperty, RandomSplitsRoundTrip)
{
    Rng rng(GetParam() * 7919 + 13);
    std::vector<unsigned char> data(1 + rng.nextBelow(4096));
    for (auto &byte : data)
        byte = static_cast<unsigned char>(rng.nextBelow(256));

    std::size_t split = rng.nextBelow(data.size() + 1);
    std::uint32_t crc_a = Crc32::of(data.data(), split);
    std::uint32_t crc_b = Crc32::of(data.data() + split, data.size() - split);
    std::uint32_t whole = Crc32::of(data.data(), data.size());
    EXPECT_EQ(Crc32::combine(crc_a, crc_b, data.size() - split), whole);
}

INSTANTIATE_TEST_SUITE_P(Splits, CrcCombineProperty,
                         ::testing::Range(0, 24));

/** Associativity of combine across three blocks (signature building). */
TEST(Crc32, CombineIsAssociativeOverBlocks)
{
    Rng rng(42);
    std::vector<unsigned char> a(100), b(200), c(300);
    for (auto *blk : {&a, &b, &c})
        for (auto &byte : *blk)
            byte = static_cast<unsigned char>(rng.nextBelow(256));

    std::uint32_t ca = Crc32::of(a.data(), a.size());
    std::uint32_t cb = Crc32::of(b.data(), b.size());
    std::uint32_t cc = Crc32::of(c.data(), c.size());

    std::uint32_t left =
        Crc32::combine(Crc32::combine(ca, cb, b.size()), cc, c.size());
    std::uint32_t right = Crc32::combine(
        ca, Crc32::combine(cb, cc, c.size()), b.size() + c.size());
    EXPECT_EQ(left, right);
}

// ---------------------------------------------------------------- Rng --

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= v == -3;
        hit_hi |= v == 3;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, FloatInHalfOpenUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, ForkIsIndependentOfParentAdvancement)
{
    Rng a(11);
    Rng fork_early = a.fork(7);
    // Advancing the parent must not change what a fork produces —
    // workload elements rely on order-independent streams.
    Rng b(11);
    b.next();
    b.next();
    // fork is computed from the *initial* state in both cases only if
    // taken before advancement; a fresh parent must agree:
    Rng c(11);
    Rng fork_again = c.fork(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fork_early.next(), fork_again.next());
}

TEST(Rng, ForksWithDifferentIdsDiffer)
{
    Rng a(11);
    Rng f1 = a.fork(1), f2 = a.fork(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += f1.next() == f2.next();
    EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- Color --

TEST(Color, QuantizationRoundTripsExtremes)
{
    EXPECT_EQ(toRgba8({0, 0, 0, 0}), (Rgba8{0, 0, 0, 0}));
    EXPECT_EQ(toRgba8({1, 1, 1, 1}), (Rgba8{255, 255, 255, 255}));
}

TEST(Color, QuantizationClampsOutOfRange)
{
    EXPECT_EQ(toRgba8({2.0f, -1.0f, 0.5f, 1.0f}).r, 255);
    EXPECT_EQ(toRgba8({2.0f, -1.0f, 0.5f, 1.0f}).g, 0);
}

TEST(Color, QuantizationRounds)
{
    // 0.5 * 255 = 127.5 -> rounds to 128.
    EXPECT_EQ(channelTo8(0.5f), 128);
}

TEST(Color, PackedIsLittleEndianRgba)
{
    Rgba8 c{1, 2, 3, 4};
    EXPECT_EQ(c.packed(), 0x04030201u);
}

TEST(Color, ToVec4Inverse)
{
    Rgba8 c{128, 64, 255, 0};
    Vec4 v = toVec4(c);
    EXPECT_EQ(toRgba8(v), c);
}

// --------------------------------------------------------------- Rect --

TEST(Rect, IntersectionAndEmptiness)
{
    RectI a{0, 0, 10, 10}, b{5, 5, 15, 15};
    EXPECT_EQ(a.intersect(b), (RectI{5, 5, 10, 10}));
    RectI c{20, 20, 30, 30};
    EXPECT_TRUE(a.intersect(c).empty());
    EXPECT_EQ(a.intersect(c).area(), 0);
}

TEST(Rect, ContainsIsHalfOpen)
{
    RectI r{0, 0, 4, 4};
    EXPECT_TRUE(r.contains(0, 0));
    EXPECT_TRUE(r.contains(3, 3));
    EXPECT_FALSE(r.contains(4, 3));
    EXPECT_FALSE(r.contains(3, 4));
}

TEST(Rect, TriangleBBox)
{
    BBox2 bb = BBox2::ofTriangle({1, 5}, {-2, 3}, {4, -1});
    EXPECT_FLOAT_EQ(bb.min_x, -2.0f);
    EXPECT_FLOAT_EQ(bb.min_y, -1.0f);
    EXPECT_FLOAT_EQ(bb.max_x, 4.0f);
    EXPECT_FLOAT_EQ(bb.max_y, 5.0f);
}
