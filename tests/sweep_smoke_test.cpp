/**
 * @file
 * Parallel-sweep smoke test: exercise the JobPool-backed scheduler on
 * two tiny registry workloads (one 2D, one 3D) across the three main
 * configurations, and check parallel output against the serial path.
 *
 * This is the TSan target: built with -DEVRSIM_SANITIZE=thread it takes
 * the full concurrent path — worker threads, in-flight memo
 * deduplication, the shared sweep statistics, and line-at-a-time
 * logging — under the race detector while staying fast enough for CI.
 */
#include <gtest/gtest.h>

#include "driver/experiment.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;

namespace {

BenchParams
smokeParams(int jobs)
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 2;
    p.warmup = 1;
    p.use_cache = false;
    p.jobs = jobs;
    return p;
}

std::vector<RunRequest>
smokeBatch(const GpuConfig &gpu)
{
    std::vector<RunRequest> reqs;
    for (const char *alias : {"ccs", "300"}) {
        reqs.push_back({alias, SimConfig::baseline(gpu)});
        reqs.push_back({alias, SimConfig::renderingElimination(gpu)});
        reqs.push_back({alias, SimConfig::evr(gpu)});
    }
    // A duplicate, so the in-flight deduplication path runs under TSan.
    reqs.push_back({"ccs", SimConfig::evr(gpu)});
    return reqs;
}

} // namespace

TEST(SweepSmoke, ParallelRegistrySweepMatchesSerial)
{
    ExperimentRunner serial(workloads::factory(), smokeParams(1));
    ExperimentRunner parallel(workloads::factory(), smokeParams(4));

    std::vector<RunRequest> reqs = smokeBatch(smokeParams(1).gpuConfig());
    std::vector<RunResult> a = serial.runAll(reqs);
    std::vector<RunResult> b = parallel.runAll(reqs);

    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(a[i].toJson(false).dump(), b[i].toJson(false).dump())
            << reqs[i].alias << "/" << reqs[i].config.name;

    SweepStats stats = parallel.sweepStats();
    EXPECT_EQ(stats.requested, reqs.size());
    EXPECT_EQ(stats.simulated, reqs.size() - 1); // duplicate memoized
    EXPECT_EQ(stats.memo_hits, 1u);
}
