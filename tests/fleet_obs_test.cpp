/**
 * @file
 * Fleet-wide observability tests (DESIGN.md §16): cross-process trace
 * stitching, shard metrics aggregation, the lifecycle event ring, and
 * the live introspection surface.
 *
 * Unit layers first (wire round-trip, snapshot folding, Prometheus
 * escaping, the bounded event ring), then two process-level legs:
 *
 *  A. A real two-shard pipe fleet swept quiet, then under chaos. The
 *     traced sweep must be byte-identical to the untraced golden run,
 *     the merged Chrome trace must contain shard spans nested inside
 *     the control plane's dispatch spans under shared trace ids, and
 *     statusJson()'s stats block must equal the exported
 *     evrsim_fleet_* counters number-for-number — including after the
 *     fleet has demonstrably restarted shards and opened breakers.
 *  B. A full SweepService drain: the daemon's `status` endpoint
 *     answers over the socket, and a drained daemon leaves one
 *     parseable merged trace with the per-shard spill files cleaned
 *     up after their events were adopted.
 */
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "driver/experiment.hpp"
#include "driver/json.hpp"
#include "driver/supervisor.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/fleet.hpp"
#include "service/fleet_obs.hpp"
#include "service/tcp_transport.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace {

/** Fresh per-test scratch directory under the system temp root. */
std::string
freshDir(const std::string &tag)
{
    std::string dir = (std::filesystem::temp_directory_path() /
                       ("evrsim_obs_" + tag + "_" +
                        std::to_string(::getpid())))
                          .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Small, fast, deterministic simulation parameters. */
BenchParams
obsParams(const std::string &cache_dir)
{
    BenchParams p;
    p.width = 160;
    p.height = 96;
    p.frames = 1;
    p.warmup = 0;
    p.use_cache = false;
    p.cache_dir = cache_dir;
    p.jobs = 1;
    p.heartbeat_ms = 0;
    p.write_summary = false;
    p.log_level = LogLevel::Quiet;
    return p;
}

FleetConfig
obsFleetConfig(const BenchParams &params)
{
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.shard_argv = {selfExecutablePath()};
    cfg.shard_params_json = shardParamsJson(params);
    cfg.ping_interval_ms = 150;
    cfg.ping_deadline_ms = 1500;
    cfg.breaker_threshold = 2;
    cfg.restart_backoff_base_ms = 50;
    cfg.restart_backoff_cap_ms = 500;
    cfg.run_deadline_ms = 3000;
    cfg.poll_ms = 25;
    return cfg;
}

/** A short sweep (4 pairs): enough to land work on both shards. */
std::vector<std::pair<std::string, std::string>>
obsPairs()
{
    std::vector<std::pair<std::string, std::string>> pairs;
    const std::vector<std::string> &aliases = workloads::allAliases();
    for (std::size_t i = 0; i < aliases.size() && pairs.size() < 4; ++i)
        pairs.emplace_back(aliases[i],
                           i % 2 == 0 ? "baseline" : "evr");
    return pairs;
}

ShardFleet::DegradedRunFn
degradedRunner(ExperimentRunner &runner)
{
    return [&runner](const std::string &alias, const SimConfig &config) {
        return runner.trySimulate(alias, config);
    };
}

/** Run the sweep; returns pair-key -> deterministic result bytes. */
std::map<std::string, std::string>
runSweep(ShardFleet &fleet, const BenchParams &params)
{
    std::map<std::string, std::string> out;
    for (const auto &[alias, config_name] : obsPairs()) {
        Result<SimConfig> config =
            configByName(config_name, params.gpuConfig());
        EXPECT_TRUE(config.ok());
        if (!config.ok())
            continue;
        std::string key = alias + "/" + config_name;
        WorkerAttempt a = fleet.execute(alias, config.value(), key);
        EXPECT_TRUE(a.status.ok())
            << key << ": " << a.status.toString();
        if (a.status.ok())
            out[key] = a.result.toJson(false).dump(0);
    }
    return out;
}

double
counterOrZero(const std::string &name,
              const MetricLabels &labels = {})
{
    Result<double> v = metricsValue(name, labels);
    return v.ok() ? v.value() : 0.0;
}

/** The 15 Stats fields, as (stats-json key, metric name) pairs. */
std::vector<std::pair<std::string, std::string>>
statKeys()
{
    std::vector<std::pair<std::string, std::string>> keys;
    for (const char *k :
         {"dispatched", "completed", "failovers", "restarts",
          "breaker_opens", "degraded", "wire_errors", "ping_timeouts",
          "stray_responses", "fences", "reconnects", "partitions",
          "stale_epochs", "registrations", "shed_registrations"})
        keys.emplace_back(k, "evrsim_fleet_" + std::string(k) +
                                 "_total");
    return keys;
}

/** True when every stats-json field equals its exported counter. */
bool
statsMatchMetrics(const Json &stats, std::string *why)
{
    for (const auto &[key, metric] : statKeys()) {
        double s = stats.get(key, Json(-1.0)).asDouble();
        double m = counterOrZero(metric);
        if (s != m) {
            if (why)
                *why = key + ": status=" + std::to_string(s) +
                       " metric=" + std::to_string(m);
            return false;
        }
    }
    return true;
}

/** Build a {"metrics":[...]} shard snapshot with one counter/gauge. */
Json
scalarSnapshot(const std::string &name, const char *type, double value,
               const std::map<std::string, std::string> &labels = {})
{
    Json labels_j = Json::object();
    for (const auto &kv : labels)
        labels_j.set(kv.first, kv.second);
    Json m = Json::object();
    m.set("name", name);
    m.set("type", type);
    m.set("labels", std::move(labels_j));
    m.set("value", value);
    Json arr = Json::array();
    arr.push(std::move(m));
    Json snap = Json::object();
    snap.set("metrics", std::move(arr));
    return snap;
}

/** Snapshot with one histogram: bounds [1, +Inf]. */
Json
histogramSnapshot(const std::string &name, std::uint64_t le1,
                  std::uint64_t inf, double sum, std::uint64_t count)
{
    Json b0 = Json::object();
    b0.set("le", 1.0);
    b0.set("count", le1);
    Json b1 = Json::object();
    b1.set("le", "+Inf");
    b1.set("count", inf);
    Json buckets = Json::array();
    buckets.push(std::move(b0));
    buckets.push(std::move(b1));
    Json m = Json::object();
    m.set("name", name);
    m.set("type", "histogram");
    m.set("labels", Json::object());
    m.set("buckets", std::move(buckets));
    m.set("sum", sum);
    m.set("count", count);
    Json arr = Json::array();
    arr.push(std::move(m));
    Json snap = Json::object();
    snap.set("metrics", std::move(arr));
    return snap;
}

// --- Prometheus escaping (the hostile-label regression) -------------

TEST(PromEscaping, HostileLabelsStayParseable)
{
    metricsReset();
    metricsCounterAdd("evrsim_hostile_total", 3.0,
                      {{"path", "C:\\tmp\\x"},
                       {"msg", "say \"hi\"\nbye"},
                       {"bad-name! 1", "v"}});
    std::string prom = metricsToProm();

    // Escapes per the exposition format: backslash, quote, newline.
    EXPECT_NE(prom.find("path=\"C:\\\\tmp\\\\x\""), std::string::npos)
        << prom;
    EXPECT_NE(prom.find("msg=\"say \\\"hi\\\"\\nbye\""),
              std::string::npos)
        << prom;
    // Hostile label *names* are sanitized, not emitted raw.
    EXPECT_NE(prom.find("bad_name__1=\"v\""), std::string::npos) << prom;
    EXPECT_EQ(prom.find("bad-name"), std::string::npos) << prom;

    // Structural invariant: every line is a comment or name{...} value
    // with no raw newline or quote imbalance inside the braces.
    std::size_t start = 0;
    while (start < prom.size()) {
        std::size_t nl = prom.find('\n', start);
        if (nl == std::string::npos)
            nl = prom.size();
        std::string line = prom.substr(start, nl - start);
        start = nl + 1;
        if (line.empty() || line[0] == '#')
            continue;
        int quotes = 0;
        for (std::size_t i = 0; i < line.size(); ++i) {
            if (line[i] == '"' && (i == 0 || line[i - 1] != '\\'))
                ++quotes;
        }
        EXPECT_EQ(quotes % 2, 0) << "torn line: " << line;
        std::size_t close = line.rfind('}');
        ASSERT_NE(close, std::string::npos) << line;
        EXPECT_LT(close + 1, line.size()) << line; // trailing value
    }
}

// --- trace-event wire form ------------------------------------------

TEST(TraceWire, RoundTripPreservesEveryField)
{
    std::vector<TraceShippedEvent> events;
    TraceShippedEvent full;
    full.name = "shard-run";
    full.cat = "worker";
    full.phase = 'X';
    full.ts_ns = 12345678;
    full.dur_ns = 420;
    full.value = -7;
    full.detail = "teapot/evr parent=00000000000000aa";
    full.tid = 3;
    full.trace_id = 0xdeadbeefcafef00dull;
    events.push_back(full);
    TraceShippedEvent bare;
    bare.name = "tick";
    bare.cat = "driver";
    bare.phase = 'i';
    bare.ts_ns = 99;
    events.push_back(bare);

    std::vector<TraceShippedEvent> back =
        traceEventsFromWire(traceEventsToWire(events));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, full.name);
    EXPECT_EQ(back[0].cat, full.cat);
    EXPECT_EQ(back[0].phase, 'X');
    EXPECT_EQ(back[0].ts_ns, full.ts_ns);
    EXPECT_EQ(back[0].dur_ns, full.dur_ns);
    EXPECT_EQ(back[0].value, full.value);
    EXPECT_EQ(back[0].detail, full.detail);
    EXPECT_EQ(back[0].tid, full.tid);
    EXPECT_EQ(back[0].trace_id, full.trace_id);
    EXPECT_EQ(back[1].phase, 'i');
    EXPECT_EQ(back[1].dur_ns, 0u);
    EXPECT_EQ(back[1].value, INT64_MIN);
    EXPECT_EQ(back[1].tid, 1);
    EXPECT_EQ(back[1].trace_id, 0u);

    // Damaged entries are skipped, not adopted half-parsed.
    Json wire = traceEventsToWire(events);
    wire.push(Json("not an object"));
    Json noname = Json::object();
    noname.set("c", "driver");
    noname.set("t", 1.0);
    wire.push(std::move(noname));
    EXPECT_EQ(traceEventsFromWire(wire).size(), 2u);
}

TEST(TraceWire, IdHexRoundTripIsStrict)
{
    EXPECT_EQ(traceIdParse(traceIdHex(0xdeadbeefcafef00dull)),
              0xdeadbeefcafef00dull);
    EXPECT_EQ(traceIdHex(0xaaull), "00000000000000aa");
    EXPECT_EQ(traceIdParse("deadbeef"), 0u);          // too short
    EXPECT_EQ(traceIdParse("00000000000000zz"), 0u);  // not hex
    EXPECT_EQ(traceIdParse(""), 0u);
}

// --- shard metrics folding ------------------------------------------

TEST(ShardMetricsFolder, CounterDeltasAccumulateAcrossRestart)
{
    metricsReset();
    ShardMetricsFolder folder;
    const std::string name = "evrsim_runs_total";
    const MetricLabels folded = {{"shard", "3"}};

    folder.fold(3, scalarSnapshot(name, "counter", 5.0));
    EXPECT_EQ(counterOrZero(name, folded), 5.0);
    folder.fold(3, scalarSnapshot(name, "counter", 8.0));
    EXPECT_EQ(counterOrZero(name, folded), 8.0);
    folder.fold(3, scalarSnapshot(name, "counter", 8.0)); // idempotent
    EXPECT_EQ(counterOrZero(name, folded), 8.0);

    // A restarted shard's counters start over at zero; the fold must
    // accumulate across the incarnation boundary, never regress.
    folder.onShardUp(3);
    folder.fold(3, scalarSnapshot(name, "counter", 2.0));
    EXPECT_EQ(counterOrZero(name, folded), 10.0);

    // Another slot folds into its own labeled instance.
    folder.fold(1, scalarSnapshot(name, "counter", 4.0));
    EXPECT_EQ(counterOrZero(name, {{"shard", "1"}}), 4.0);
    EXPECT_EQ(counterOrZero(name, folded), 10.0);
}

TEST(ShardMetricsFolder, GaugesOverwriteAndConflictsStick)
{
    metricsReset();
    ShardMetricsFolder folder;

    folder.fold(0, scalarSnapshot("evrsim_depth", "gauge", 4.0));
    EXPECT_EQ(counterOrZero("evrsim_depth", {{"shard", "0"}}), 4.0);
    folder.fold(0, scalarSnapshot("evrsim_depth", "gauge", 2.0));
    EXPECT_EQ(counterOrZero("evrsim_depth", {{"shard", "0"}}), 2.0);

    // Sticky types: a shard shipping the same name as a different
    // type is a dropped sample and a visible conflict, not a silent
    // re-type of the local series.
    metricsCounterAdd("evrsim_mixed_total", 1.0);
    std::uint64_t before = metricsTypeConflicts();
    folder.fold(2, scalarSnapshot("evrsim_mixed_total", "gauge", 9.0));
    EXPECT_GT(metricsTypeConflicts(), before);
    EXPECT_EQ(counterOrZero("evrsim_mixed_total"), 1.0);
}

TEST(ShardMetricsFolder, HistogramFoldAndShardConflictTally)
{
    metricsReset();
    ShardMetricsFolder folder;
    const std::string name = "evrsim_run_wall_ms";

    folder.fold(1, histogramSnapshot(name, 2, 3, 7.0, 5));
    // metricsValue returns a histogram's sum.
    EXPECT_EQ(counterOrZero(name, {{"shard", "1"}}), 7.0);
    folder.fold(1, histogramSnapshot(name, 3, 4, 9.0, 7)); // delta 2
    EXPECT_EQ(counterOrZero(name, {{"shard", "1"}}), 9.0);

    // The shard's own type_conflicts tally surfaces per-shard.
    Json snap = histogramSnapshot(name, 3, 4, 9.0, 7);
    snap.set("type_conflicts", 2.0);
    folder.fold(1, snap);
    EXPECT_EQ(counterOrZero("evrsim_shard_type_conflicts_total",
                            {{"shard", "1"}}),
              2.0);
    snap.set("type_conflicts", 5.0);
    folder.fold(1, snap);
    EXPECT_EQ(counterOrZero("evrsim_shard_type_conflicts_total",
                            {{"shard", "1"}}),
              5.0);
}

// --- the lifecycle event ring ---------------------------------------

TEST(FleetEventRing, BoundedRingPersistsJsonl)
{
    std::string dir = freshDir("events");
    std::string path = dir + "/events.jsonl";
    FleetEventRing ring(4);
    ring.setPersistPath(path);
    const char *types[] = {"registration", "restart", "breaker-open",
                           "breaker-close", "fence", "failover"};
    for (int i = 0; i < 6; ++i)
        ring.record(types[i], i % 2, "detail-" + std::to_string(i));

    // The in-memory ring keeps only the newest `capacity` events with
    // monotone sequence numbers.
    std::vector<FleetEvent> snap = ring.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().seq, 3u);
    EXPECT_EQ(snap.front().type, "breaker-open");
    EXPECT_EQ(snap.back().seq, 6u);
    EXPECT_EQ(snap.back().type, "failover");
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);

    // The JSONL mirror keeps everything, one parseable object a line.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        Result<Json> j = Json::tryParse(line);
        ASSERT_TRUE(j.ok()) << line;
        EXPECT_EQ(j.value().get("seq", Json(0.0)).asDouble(),
                  static_cast<double>(lines + 1));
        EXPECT_EQ(j.value().get("type", Json("")).asString(),
                  types[lines]);
        EXPECT_TRUE(j.value().find("ts_ms") != nullptr);
        EXPECT_TRUE(j.value().find("shard") != nullptr);
        ++lines;
    }
    EXPECT_EQ(lines, 6);

    // Round-trips through the JSON event form used by `status`.
    Json arr = ring.toJson();
    ASSERT_EQ(arr.size(), 4u);
    EXPECT_EQ(arr.at(0).get("detail", Json("")).asString(), "detail-2");
    std::filesystem::remove_all(dir);
}

// --- process-level: stitched traces + status vs metrics -------------

/** Events from a parsed Chrome trace document. */
const Json *
traceEventsArray(const Json &doc)
{
    const Json *events = doc.find("traceEvents");
    return events && events->type() == Json::Type::Array ? events
                                                         : nullptr;
}

TEST(FleetObsSoak, StitchedTraceAndStatusMatchMetrics)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads under sanitizers is not supported";
#endif
    ASSERT_FALSE(selfExecutablePath().empty());
    ::unsetenv("EVRSIM_CHAOS");
    ::unsetenv("EVRSIM_TRACE");
    std::string dir = freshDir("soak");
    BenchParams params = obsParams(dir);
    ExperimentRunner fallback(workloads::factory(), params);

    // --- Leg A: untraced golden bytes.
    metricsReset();
    std::map<std::string, std::string> golden;
    {
        ShardFleet fleet(obsFleetConfig(params),
                         degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        golden = runSweep(fleet, params);
        fleet.stop();
    }
    ASSERT_EQ(golden.size(), obsPairs().size());

    // --- Leg B: the same sweep fully traced. Observability must not
    // change a single result byte (the paper's figures depend on it).
    std::string trace_path = dir + "/merged_trace.json";
    ::setenv("EVRSIM_TRACE", "driver,worker", 1); // shard children
    TraceConfig tcfg;
    tcfg.mask = (1u << static_cast<unsigned>(TraceCat::Driver)) |
                (1u << static_cast<unsigned>(TraceCat::Worker));
    tcfg.path = trace_path;
    traceConfigure(tcfg);
    metricsReset();
    {
        ShardFleet fleet(obsFleetConfig(params),
                         degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        std::map<std::string, std::string> traced =
            runSweep(fleet, params);
        ASSERT_EQ(traced.size(), golden.size());
        for (const auto &[key, bytes] : golden)
            EXPECT_EQ(traced.at(key), bytes) << key;

        // Live topology while the fleet is up.
        Json status = fleet.statusJson();
        EXPECT_EQ(status.get("transport", Json("")).asString(), "pipe");
        const Json *shards = status.find("shards");
        ASSERT_TRUE(shards && shards->type() == Json::Type::Array);
        ASSERT_EQ(shards->size(), 2u);
        for (std::size_t i = 0; i < shards->size(); ++i) {
            const Json &s = shards->at(i);
            EXPECT_EQ(s.get("slot", Json(-1.0)).asDouble(),
                      static_cast<double>(i));
            EXPECT_TRUE(s.get("alive", Json(false)).asBool());
            EXPECT_EQ(s.get("breaker", Json("")).asString(), "closed");
            EXPECT_EQ(s.get("inflight", Json(-1.0)).asDouble(), 0.0);
            EXPECT_EQ(s.get("restarts", Json(-1.0)).asDouble(), 0.0);
            // Both shards have answered frames by now.
            EXPECT_GE(s.get("lease_age_ms", Json(-1.0)).asDouble(),
                      0.0);
        }

        // The status counter block and the exported metrics are two
        // views of the same ledger: equal number-for-number. Retry a
        // few times to step over an in-flight ping tick.
        std::string why;
        bool match = false;
        for (int attempt = 0; attempt < 5 && !match; ++attempt) {
            match = statsMatchMetrics(
                *fleet.statusJson().find("stats"), &why);
            if (!match)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
        }
        EXPECT_TRUE(match) << why;

        // Both shards registered in the event ring.
        Json events = fleet.eventsJson();
        int registrations = 0;
        for (std::size_t i = 0; i < events.size(); ++i)
            if (events.at(i).get("type", Json("")).asString() ==
                "registration")
                ++registrations;
        EXPECT_GE(registrations, 2);
        fleet.stop();
    }

    // --- Leg C: chaos. Counters and status must stay in lockstep
    // through restarts, breaker trips and failovers.
    ::setenv("EVRSIM_CHAOS",
             "worker-kill9:0.08:11,worker-stall:0.03:12,"
             "wire-corrupt:0.05:13,wire-drop:0.04:14,wire-dup:0.05:15",
             1);
    metricsReset();
    {
        ShardFleet fleet(obsFleetConfig(params),
                         degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        auto soak_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(45);
        for (;;) {
            std::map<std::string, std::string> chaotic =
                runSweep(fleet, params);
            EXPECT_EQ(chaotic.size(), golden.size());
            for (const auto &[key, bytes] : golden) {
                auto it = chaotic.find(key);
                if (it != chaotic.end()) {
                    EXPECT_EQ(it->second, bytes) << key;
                }
            }
            ShardFleet::Stats st = fleet.stats();
            if (st.restarts > 0 && st.breaker_opens > 0)
                break;
            if (std::chrono::steady_clock::now() >= soak_deadline)
                break;
        }
        fleet.stop();
        ::unsetenv("EVRSIM_CHAOS");

        // Quiescent after stop(): the equality must be exact.
        std::string why;
        EXPECT_TRUE(statsMatchMetrics(*fleet.statusJson().find("stats"),
                                      &why))
            << why;

        // The churn is in the event ring too.
        Json events = fleet.eventsJson();
        bool saw_restart = false;
        for (std::size_t i = 0; i < events.size(); ++i) {
            std::string type =
                events.at(i).get("type", Json("")).asString();
            if (type == "restart")
                saw_restart = true;
        }
        ShardFleet::Stats st = fleet.stats();
        if (st.restarts > 0) {
            EXPECT_TRUE(saw_restart);
        }
    }

    // --- The merged trace: one file, dispatch spans from the control
    // plane and shard spans adopted into per-slot lanes, stitched by
    // shared 16-hex trace ids, with shard time nested inside the
    // dispatch window.
    ASSERT_TRUE(traceWrite().ok());
    std::ifstream in(trace_path);
    ASSERT_TRUE(in.good());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Result<Json> doc = Json::tryParse(text);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    const Json *events = traceEventsArray(doc.value());
    ASSERT_TRUE(events != nullptr);

    // Index dispatch spans by trace id; collect shard-lane spans.
    struct Span {
        double ts = 0, dur = 0;
        double pid = 0;
    };
    std::map<std::string, Span> dispatches;
    std::vector<std::pair<std::string, Span>> shard_spans;
    bool saw_shard_lane_name = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const Json &e = events->at(i);
        std::string name = e.get("name", Json("")).asString();
        double pid = e.get("pid", Json(0.0)).asDouble();
        if (name == "process_name" && pid >= 1000000) {
            const Json *args = e.find("args");
            if (args &&
                args->get("name", Json("")).asString().rfind(
                    "evrsim-shard-", 0) == 0)
                saw_shard_lane_name = true;
            continue;
        }
        const Json *args = e.find("args");
        std::string tid_hex =
            args ? args->get("trace_id", Json("")).asString() : "";
        if (tid_hex.empty())
            continue;
        Span s;
        s.ts = e.get("ts", Json(0.0)).asDouble();
        s.dur = e.get("dur", Json(0.0)).asDouble();
        s.pid = pid;
        if (name == "fleet-dispatch")
            dispatches[tid_hex] = s;
        else if (pid >= 1000000 && name == "shard-run")
            shard_spans.emplace_back(tid_hex, s);
    }
    EXPECT_TRUE(saw_shard_lane_name);
    EXPECT_FALSE(dispatches.empty());
    ASSERT_FALSE(shard_spans.empty())
        << "no shard spans were adopted into the merged trace";

    // Every shard span's trace id resolves to a dispatch span that
    // contains it (rebased onto the dispatch start; 1ms slack for
    // microsecond rounding and clock skew between collect and reply).
    int stitched = 0;
    for (const auto &[tid_hex, s] : shard_spans) {
        auto it = dispatches.find(tid_hex);
        if (it == dispatches.end())
            continue;
        ++stitched;
        EXPECT_GE(s.ts + 1000.0, it->second.ts) << tid_hex;
        EXPECT_LE(s.ts + s.dur,
                  it->second.ts + it->second.dur + 1000.0)
            << tid_hex;
    }
    EXPECT_GT(stitched, 0)
        << "shard spans never shared a trace id with a dispatch span";

    ::unsetenv("EVRSIM_TRACE");
    std::filesystem::remove_all(dir);
}

// --- process-level: the daemon status endpoint + drain flush --------

TEST(FleetObsService, StatusEndpointAndDrainedTraceFlush)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads under sanitizers is not supported";
#endif
    ASSERT_FALSE(selfExecutablePath().empty());
    ::unsetenv("EVRSIM_CHAOS");
    std::string dir = freshDir("svc");
    BenchParams params = obsParams(dir);

    std::string trace_path = dir + "/svc_trace.json";
    ::setenv("EVRSIM_TRACE", "driver,worker", 1); // shard children
    TraceConfig tcfg;
    tcfg.mask = (1u << static_cast<unsigned>(TraceCat::Driver)) |
                (1u << static_cast<unsigned>(TraceCat::Worker));
    tcfg.path = trace_path;
    traceConfigure(tcfg);
    metricsReset();

    ServiceConfig scfg;
    scfg.socket_path = dir + "/evrsim.sock";
    scfg.fleet = obsFleetConfig(params);
    scfg.fleet.events_path = dir + "/events.jsonl";

    SweepService service(workloads::factory(), params, scfg);
    ASSERT_TRUE(service.start().ok());
    ASSERT_TRUE(service.fleet() != nullptr);

    ClientOptions copts;
    copts.socket_path = scfg.socket_path;
    ServiceClient client(copts);

    // Introspection before any sweep: topology + events over the wire.
    Result<Json> st = client.status(true);
    ASSERT_TRUE(st.ok()) << st.status().toString();
    EXPECT_EQ(st.value().get("type", Json("")).asString(), "status");
    EXPECT_FALSE(st.value().get("draining", Json(true)).asBool());
    const Json *svc = st.value().find("service");
    ASSERT_TRUE(svc && svc->type() == Json::Type::Object);
    EXPECT_EQ(svc->get("requests_admitted", Json(-1.0)).asDouble(),
              0.0);
    const Json *fleet_j = st.value().find("fleet");
    ASSERT_TRUE(fleet_j && fleet_j->type() == Json::Type::Object);
    const Json *shards = fleet_j->find("shards");
    ASSERT_TRUE(shards && shards->type() == Json::Type::Array);
    EXPECT_EQ(shards->size(), 2u);
    const Json *events = st.value().find("events");
    ASSERT_TRUE(events && events->type() == Json::Type::Array);

    // A small sweep through the fleet, then status again.
    std::vector<ClientRunSpec> runs;
    for (const auto &[alias, config_name] : obsPairs())
        runs.push_back({alias, config_name});
    Result<SweepReply> reply = client.runSweep("obs-test", runs);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    for (const ClientRunOutcome &r : reply.value().runs)
        EXPECT_TRUE(r.status.ok()) << r.workload << "/" << r.config;

    st = client.status(false);
    ASSERT_TRUE(st.ok());
    svc = st.value().find("service");
    ASSERT_TRUE(svc != nullptr);
    EXPECT_GE(svc->get("runs_completed", Json(0.0)).asDouble(),
              static_cast<double>(obsPairs().size()));
    EXPECT_EQ(st.value().find("events"), nullptr); // not requested
    fleet_j = st.value().find("fleet");
    ASSERT_TRUE(fleet_j != nullptr);
    const Json *fstats = fleet_j->find("stats");
    ASSERT_TRUE(fstats != nullptr);
    EXPECT_GE(fstats->get("dispatched", Json(0.0)).asDouble(),
              static_cast<double>(obsPairs().size()));

    // Drain: flushes the merged trace and removes the adopted shard
    // spill files.
    service.drain();
    {
        std::ifstream in(trace_path);
        ASSERT_TRUE(in.good()) << trace_path;
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        Result<Json> doc = Json::tryParse(text);
        ASSERT_TRUE(doc.ok()) << doc.status().toString();
        const Json *tev = traceEventsArray(doc.value());
        ASSERT_TRUE(tev != nullptr);
        bool saw_dispatch = false;
        for (std::size_t i = 0; i < tev->size(); ++i)
            if (tev->at(i).get("name", Json("")).asString() ==
                "fleet-dispatch")
                saw_dispatch = true;
        EXPECT_TRUE(saw_dispatch);
    }
    EXPECT_FALSE(std::filesystem::exists(dir + "/shard-0.trace.json"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/shard-1.trace.json"));

    // The lifecycle mirror survives the daemon: registrations at
    // least, one JSON object a line.
    {
        std::ifstream in(scfg.fleet.events_path);
        ASSERT_TRUE(in.good());
        std::string line;
        int registrations = 0;
        while (std::getline(in, line)) {
            Result<Json> j = Json::tryParse(line);
            ASSERT_TRUE(j.ok()) << line;
            if (j.value().get("type", Json("")).asString() ==
                "registration")
                ++registrations;
        }
        EXPECT_GE(registrations, 2);
    }

    ::unsetenv("EVRSIM_TRACE");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace evrsim

/** The binary doubles as the shard program (like evrsim-daemon):
 *  --evrsim-shard=<i> serves a pipe shard, --evrsim-remote-shard=
 *  <host:port> dials a control plane and serves a TCP shard. */
int
main(int argc, char **argv)
{
    std::string shard_params;
    int shard_index =
        evrsim::shardFlagFromArgv(argc, argv, shard_params);
    if (shard_index >= 0)
        evrsim::runShardAndExit(shard_index,
                                evrsim::workloads::factory(),
                                evrsim::BenchParams{}, shard_params);
    std::string remote_plane =
        evrsim::remoteShardFlagFromArgv(argc, argv);
    if (!remote_plane.empty())
        evrsim::runRemoteShardAndExit(remote_plane,
                                      evrsim::workloads::factory(),
                                      evrsim::BenchParams{});
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
