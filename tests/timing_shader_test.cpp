/**
 * @file
 * Unit tests for the remaining modelled components: the analytic timing
 * model (stage bottlenecks, skip costs, technique-specific terms), the
 * shader core (program costs, texture routing, procedural determinism),
 * the framebuffer (tile comparisons, PPM output), FrameStats
 * accumulation, and the real Z-Prepass configuration — plus
 * cross-configuration invariance properties (tile size must never
 * change the image).
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gpu/timing_model.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

// -------------------------------------------------------- TimingModel --

namespace {

GpuConfig g_cfg = tinyGpu();

} // namespace

TEST(TimingModel, EmptyFrameCostsNothing)
{
    TimingModel tm(g_cfg);
    FrameStats empty;
    EXPECT_EQ(tm.geometryCycles(empty), 0u);
    EXPECT_EQ(tm.tileCycles(empty), 0u);
}

TEST(TimingModel, GeometryBottleneckIsTheMaxStage)
{
    TimingModel tm(g_cfg);
    FrameStats s;
    s.vertex_shader_instrs = 10'000; // vertex stage = 10000 cycles
    s.prims_submitted = 100;         // assembly = 100
    Cycles vertex_bound = tm.geometryCycles(s);
    EXPECT_EQ(vertex_bound, 10'000u);

    // Growing a non-bottleneck stage below the max changes nothing.
    s.prims_submitted = 5'000;
    EXPECT_EQ(tm.geometryCycles(s), vertex_bound);

    // Growing it beyond the max moves the bottleneck.
    s.prims_submitted = 20'000;
    EXPECT_EQ(tm.geometryCycles(s), 20'000u);
}

TEST(TimingModel, SignatureWorkSerializesWithBinning)
{
    TimingModel tm(g_cfg);
    FrameStats s;
    s.bin_tile_pairs = 1'000;
    Cycles base = tm.geometryCycles(s);
    s.signature_updates = 1'000;
    s.signature_shift_bytes = 128'000;
    Cycles with_sig = tm.geometryCycles(s);
    EXPECT_GT(with_sig, base);
    // 4 cycles per combine + 128 B / 32 B-per-cycle shifting.
    EXPECT_EQ(with_sig - base,
              static_cast<Cycles>(1'000 * 4 + 128'000 / 32));
}

TEST(TimingModel, MemoryLatencyIsPartiallyHidden)
{
    TimingModel tm(g_cfg);
    FrameStats s;
    s.prims_submitted = 100;
    Cycles base = tm.geometryCycles(s);
    s.geom_mem_latency = 1'000;
    Cycles stalled = tm.geometryCycles(s);
    EXPECT_GT(stalled, base);
    EXPECT_LT(stalled - base, 1'000u); // overlap factor < 1
}

TEST(TimingModel, SkippedTileCostsOnlyTheCompare)
{
    TimingModel tm(g_cfg);
    FrameStats t;
    t.tiles_total = 1;
    t.signature_compares = 1;
    t.tiles_skipped_re = 1; // tiles_rendered stays 0
    Cycles skip = tm.tileCycles(t);
    EXPECT_GT(skip, 0u);
    EXPECT_LT(skip, 8u);
}

TEST(TimingModel, ShadingBoundTileScalesWithFragmentProcessors)
{
    FrameStats t;
    t.tiles_total = 1;
    t.tiles_rendered = 1;
    t.fragment_shader_instrs = 100'000;

    GpuConfig wide = g_cfg;
    wide.fragment_processors = 8;
    TimingModel narrow(g_cfg); // 4 FPs
    TimingModel wide_tm(wide);
    EXPECT_GT(narrow.tileCycles(t), wide_tm.tileCycles(t));
}

TEST(TimingModel, FlushAddsOnTopOfBottleneck)
{
    TimingModel tm(g_cfg);
    FrameStats t;
    t.tiles_total = 1;
    t.tiles_rendered = 1;
    t.blend_ops = 100;
    Cycles no_flush = tm.tileCycles(t);
    t.tile_flush_bytes = 1'024;
    EXPECT_GT(tm.tileCycles(t), no_flush);
}

// --------------------------------------------------------- ShaderCore --

TEST(ShaderCore, ProgramCostsAreOrdered)
{
    // Procedural is the ALU-heavy program; Flat the cheapest.
    EXPECT_LT(ShaderCore::fragmentInstrs(FragmentProgram::Flat),
              ShaderCore::fragmentInstrs(FragmentProgram::Textured));
    EXPECT_LT(ShaderCore::fragmentInstrs(FragmentProgram::Textured),
              ShaderCore::fragmentInstrs(FragmentProgram::Procedural));
    EXPECT_EQ(ShaderCore::fragmentTexFetches(FragmentProgram::Flat), 0u);
    EXPECT_EQ(ShaderCore::fragmentTexFetches(FragmentProgram::Textured), 1u);
    EXPECT_EQ(ShaderCore::fragmentTexFetches(FragmentProgram::Procedural),
              0u);
}

TEST(ShaderCore, FlatPassesInterpolatedColor)
{
    MemorySystem mem;
    ShaderCore core(mem);
    FrameStats stats;
    RenderState rs;
    rs.program = FragmentProgram::Flat;
    auto out = core.shadeFragment(rs, {0.25f, 0.5f, 0.75f, 1.0f}, {0, 0},
                                  3, 4, stats);
    EXPECT_FALSE(out.discarded);
    EXPECT_EQ(out.color, (Vec4{0.25f, 0.5f, 0.75f, 1.0f}));
    EXPECT_EQ(stats.fragment_shader_instrs,
              ShaderCore::fragmentInstrs(FragmentProgram::Flat));
    EXPECT_EQ(stats.texture_fetches, 0u);
}

TEST(ShaderCore, TexturedSamplesAndCountsFetch)
{
    MemorySystem mem;
    ShaderCore core(mem);
    Texture tex(TextureKind::Solid, 32, {0.2f, 0.4f, 0.6f, 1.0f},
                {0, 0, 0, 0});
    tex.setBase(mem.addressSpace().allocTexture(tex.byteSize()));
    std::vector<const Texture *> textures{&tex};
    core.bindTextures(&textures);

    FrameStats stats;
    RenderState rs;
    rs.program = FragmentProgram::Textured;
    rs.texture = 0;
    auto out = core.shadeFragment(rs, {1, 1, 1, 0.5f}, {0.3f, 0.7f}, 0, 0,
                                  stats);
    EXPECT_NEAR(out.color.x, 0.2f, 1e-6f);
    // Vertex alpha carries through for translucent textured sprites.
    EXPECT_NEAR(out.color.w, 0.5f, 1e-6f);
    EXPECT_EQ(stats.texture_fetches, 1u);
    EXPECT_GT(mem.stats().texture_caches.accesses(), 0u);
}

TEST(ShaderCore, QuadsMapToDistinctTextureCaches)
{
    MemorySystem mem;
    ShaderCore core(mem);
    Texture tex(TextureKind::Solid, 32, {1, 1, 1, 1}, {0, 0, 0, 0});
    tex.setBase(mem.addressSpace().allocTexture(tex.byteSize()));
    std::vector<const Texture *> textures{&tex};
    core.bindTextures(&textures);

    RenderState rs;
    rs.program = FragmentProgram::Textured;
    rs.texture = 0;
    FrameStats stats;
    // Fragments of the same 2x2 quad share a unit: same line -> 1 miss.
    core.shadeFragment(rs, {1, 1, 1, 1}, {0.5f, 0.5f}, 0, 0, stats);
    core.shadeFragment(rs, {1, 1, 1, 1}, {0.5f, 0.5f}, 1, 1, stats);
    EXPECT_EQ(mem.stats().texture_caches.misses(), 1u);
    // A different quad maps to a different (cold) cache.
    core.shadeFragment(rs, {1, 1, 1, 1}, {0.5f, 0.5f}, 2, 0, stats);
    EXPECT_EQ(mem.stats().texture_caches.misses(), 2u);
}

TEST(ShaderCore, ProceduralIsDeterministic)
{
    MemorySystem mem;
    ShaderCore core(mem);
    FrameStats stats;
    RenderState rs;
    rs.program = FragmentProgram::Procedural;
    auto a = core.shadeFragment(rs, {1, 1, 1, 1}, {0.3f, 0.8f}, 0, 0, stats);
    auto b = core.shadeFragment(rs, {1, 1, 1, 1}, {0.3f, 0.8f}, 5, 9, stats);
    EXPECT_EQ(a.color, b.color); // depends on uv only, not pixel position
}

TEST(ShaderCore, DiscardThresholdAtHalfAlpha)
{
    MemorySystem mem;
    ShaderCore core(mem);
    Texture opaque(TextureKind::Solid, 32, {1, 1, 1, 1}, {0, 0, 0, 0});
    opaque.setBase(mem.addressSpace().allocTexture(opaque.byteSize()));
    std::vector<const Texture *> textures{&opaque};
    core.bindTextures(&textures);

    RenderState rs;
    rs.program = FragmentProgram::TexturedDiscard;
    rs.texture = 0;
    FrameStats stats;
    // Texture alpha 1 * vertex alpha 0.4 < 0.5 -> discarded.
    auto killed =
        core.shadeFragment(rs, {1, 1, 1, 0.4f}, {0, 0}, 0, 0, stats);
    EXPECT_TRUE(killed.discarded);
    auto kept = core.shadeFragment(rs, {1, 1, 1, 0.6f}, {0, 0}, 0, 0, stats);
    EXPECT_FALSE(kept.discarded);
    EXPECT_EQ(stats.fragments_discarded_shader, 1u);
}

// -------------------------------------------------------- Framebuffer --

TEST(Framebuffer, RectComparisonsAreExact)
{
    Framebuffer a(32, 32), b(32, 32);
    a.clear({1, 2, 3, 255});
    b.clear({1, 2, 3, 255});
    EXPECT_TRUE(a.equals(b));
    b.setPixel(17, 5, {9, 9, 9, 255});
    EXPECT_FALSE(a.equals(b));
    EXPECT_EQ(a.diffCount(b), 1u);
    EXPECT_TRUE(a.rectEquals(b, {0, 0, 16, 16}));
    EXPECT_FALSE(a.rectEquals(b, {16, 0, 32, 16}));
}

TEST(Framebuffer, CopyRectIsTileGranular)
{
    Framebuffer src(32, 32), dst(32, 32);
    src.clear({200, 0, 0, 255});
    dst.clear({0, 0, 200, 255});
    dst.copyRect(src, {8, 8, 16, 16});
    EXPECT_EQ(dst.pixel(8, 8), (Rgba8{200, 0, 0, 255}));
    EXPECT_EQ(dst.pixel(7, 8), (Rgba8{0, 0, 200, 255}));
    EXPECT_EQ(dst.pixel(16, 16), (Rgba8{0, 0, 200, 255}));
}

TEST(Framebuffer, CrcTracksContent)
{
    Framebuffer a(16, 16);
    a.clear({5, 5, 5, 255});
    std::uint32_t before = a.contentCrc();
    a.setPixel(3, 3, {6, 5, 5, 255});
    EXPECT_NE(a.contentCrc(), before);
}

TEST(Framebuffer, WritesValidPpm)
{
    Framebuffer fb(4, 2);
    fb.clear({10, 20, 30, 255});
    fb.setPixel(0, 0, {255, 0, 0, 255});

    auto path = std::filesystem::temp_directory_path() / "evrsim_test.ppm";
    ASSERT_TRUE(fb.writePpm(path.string()));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char header[16] = {};
    ASSERT_EQ(std::fscanf(f, "%15s", header), 1);
    EXPECT_STREQ(header, "P6");
    int w = 0, h = 0, maxv = 0;
    ASSERT_EQ(std::fscanf(f, "%d %d %d", &w, &h, &maxv), 3);
    EXPECT_EQ(w, 4);
    EXPECT_EQ(h, 2);
    EXPECT_EQ(maxv, 255);
    std::fgetc(f); // single whitespace after header
    unsigned char rgb[3];
    ASSERT_EQ(std::fread(rgb, 1, 3, f), 3u);
    EXPECT_EQ(rgb[0], 255);
    EXPECT_EQ(rgb[1], 0);
    std::fclose(f);
    std::filesystem::remove(path);
}

// --------------------------------------------------------- FrameStats --

TEST(FrameStats, AccumulateSumsEveryCounter)
{
    FrameStats a, b;
    a.fragments_shaded = 10;
    a.casuistry[1] = 2;
    a.mem.dram.read_bytes[0] = 100;
    b.fragments_shaded = 5;
    b.casuistry[1] = 3;
    b.mem.dram.read_bytes[0] = 50;
    b.geometry_cycles = 7;
    a.accumulate(b);
    EXPECT_EQ(a.fragments_shaded, 15u);
    EXPECT_EQ(a.casuistry[1], 5u);
    EXPECT_EQ(a.mem.dram.read_bytes[0], 150u);
    EXPECT_EQ(a.geometry_cycles, 7u);
}

TEST(FrameStats, ShadedPerPixelMetric)
{
    FrameStats s;
    s.fragments_shaded = 200;
    EXPECT_DOUBLE_EQ(s.shadedFragmentsPerPixel(100), 2.0);
    EXPECT_DOUBLE_EQ(s.shadedFragmentsPerPixel(0), 0.0);
}

// ---------------------------------------------------------- Z-Prepass --

TEST(ZPrepass, PaysForThePrepassButCutsShading)
{
    // Far-then-near opaque stack: like the oracle, Z-Prepass halves the
    // shading, but unlike the oracle it pays an extra rasterization and
    // depth-test pass.
    auto build = [](Mesh *q, Scene &scene) {
        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;
        submitRect(scene, q, 0, 0, 32, 32, 0.8f, woz).tint = {0, 1, 0, 1};
        submitRect(scene, q, 0, 0, 32, 32, 0.2f, woz).tint = {1, 0, 0, 1};
    };

    GpuSimulator base(SimConfig::baseline(tinyGpu()));
    Mesh q1 = meshes::quad({1, 1, 1, 1});
    base.uploadMesh(q1);
    Scene s1;
    setCamera2D(s1, 64, 48);
    build(&q1, s1);
    FrameStats b = base.renderFrame(s1);

    GpuSimulator zp(SimConfig::zPrepass(tinyGpu()));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    zp.uploadMesh(q2);
    Scene s2;
    setCamera2D(s2, 64, 48);
    build(&q2, s2);
    FrameStats z = zp.renderFrame(s2);

    // Perfect visibility: only the near quad shades.
    EXPECT_EQ(z.fragments_shaded, 1024u);
    EXPECT_EQ(b.fragments_shaded, 2048u);
    // But the prepass re-rasterizes the Z-writing geometry.
    EXPECT_GT(z.fragments_generated, b.fragments_generated);
    EXPECT_GT(z.early_z_tests, b.early_z_tests);
    // Identical output.
    EXPECT_TRUE(zp.framebuffer().equals(base.framebuffer()));
}

TEST(ZPrepass, OracleChargesNothingForTheSameDepths)
{
    auto run = [](const SimConfig &cfg) {
        GpuSimulator sim(cfg);
        Mesh q = meshes::quad({1, 1, 1, 1});
        sim.uploadMesh(q);
        Scene s;
        setCamera2D(s, 64, 48);
        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;
        submitRect(s, &q, 0, 0, 48, 32, 0.7f, woz);
        submitRect(s, &q, 8, 4, 24, 24, 0.3f, woz);
        return sim.renderFrame(s);
    };

    FrameStats oracle = run(SimConfig::oracleZ(tinyGpu()));
    FrameStats zp = run(SimConfig::zPrepass(tinyGpu()));
    EXPECT_EQ(oracle.fragments_shaded, zp.fragments_shaded);
    EXPECT_LT(oracle.fragments_generated, zp.fragments_generated);
    EXPECT_LT(oracle.raster_cycles, zp.raster_cycles);
}

// ------------------------------------ Tile-size invariance property --

class TileSizeInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(TileSizeInvariance, ImageIndependentOfTileSize)
{
    // Tiling is an implementation choice: for any tile size, baseline
    // and EVR must produce the same image (and each other's).
    int tile_size = GetParam();
    GpuConfig ref_cfg = tinyGpu(96, 64);
    GpuConfig cfg = ref_cfg;
    cfg.tile_size = tile_size;

    auto build = [](Mesh *q, Scene &s, int i) {
        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;
        submitRect(s, q, -1, -1, 98, 66, 0.9f, woz).tint = {0, 0, 1, 1};
        submitRect(s, q, 10.0f + 3 * i, 12, 30, 22, 0.4f, woz).tint = {
            1, 0, 0, 1};
        RenderState nwoz;
        nwoz.depth_test = false;
        nwoz.depth_write = false;
        submitRect(s, q, 40, 30, 44, 26, 0.1f, nwoz).tint = {0.2f, 0.8f,
                                                             0.2f, 1};
    };

    GpuSimulator ref(SimConfig::baseline(ref_cfg));
    GpuSimulator sized(SimConfig::evr(cfg));
    Mesh q1 = meshes::quad({1, 1, 1, 1});
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    ref.uploadMesh(q1);
    sized.uploadMesh(q2);

    for (int i = 0; i < 4; ++i) {
        Scene s1, s2;
        setCamera2D(s1, 96, 64);
        setCamera2D(s2, 96, 64);
        build(&q1, s1, i);
        build(&q2, s2, i);
        ref.renderFrame(s1);
        sized.renderFrame(s2);
        ASSERT_TRUE(ref.framebuffer().equals(sized.framebuffer()))
            << "tile size " << tile_size << " frame " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileSizeInvariance,
                         ::testing::Values(8, 16, 32));
