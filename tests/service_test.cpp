/**
 * @file
 * Sweep-service suite: wire framing, admission control, per-client
 * quotas, cross-client single-flight dedup, client retry/backoff,
 * cooperative shutdown, and the crash-recovery property — kill -9 the
 * daemon mid-sweep, restart it on the same cache directory, reconnect
 * by request id, and the completed sweep's RunResult documents are
 * byte-identical to an uninterrupted run.
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/shutdown.hpp"
#include "driver/envelope.hpp"
#include "driver/experiment.hpp"
#include "driver/sweep_journal.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/request_journal.hpp"
#include "service/service_protocol.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace {

/** Self-deleting scratch directory (kept short: sun_path is 108). */
struct TempDir {
    std::string path;
    TempDir()
    {
        char tmpl[] = "/tmp/evrsvcXXXXXX";
        char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
};

/** Small, fast, deterministic parameters for service tests. */
BenchParams
tinyParams(const std::string &cache_dir)
{
    BenchParams p;
    p.width = 160;
    p.height = 96;
    p.frames = 1;
    p.warmup = 0;
    p.use_cache = !cache_dir.empty();
    p.cache_dir = cache_dir;
    p.jobs = 1;
    p.heartbeat_ms = 0;
    p.write_summary = false;
    p.log_level = LogLevel::Quiet;
    return p;
}

ServiceConfig
serviceConfig(const std::string &socket_path)
{
    ServiceConfig sc;
    sc.socket_path = socket_path;
    sc.poll_ms = 50;
    return sc;
}

ClientOptions
clientOptions(const std::string &socket_path, const std::string &who)
{
    ClientOptions o;
    o.socket_path = socket_path;
    o.client_id = who;
    o.retries = 3;
    o.backoff_base_ms = 20;
    o.backoff_cap_ms = 200;
    o.poll_ms = 50;
    return o;
}

bool
waitForSocket(const std::string &path, int timeout_ms)
{
    for (int waited = 0; waited < timeout_ms; waited += 20) {
        if (::access(path.c_str(), F_OK) == 0)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
}

TEST(ServiceProtocol, ConfigByNameResolvesEveryKnownName)
{
    GpuConfig gpu;
    for (const std::string &name : knownConfigNames()) {
        Result<SimConfig> c = configByName(name, gpu);
        ASSERT_TRUE(c.ok()) << name;
        EXPECT_EQ(c.value().name, name);
    }
    Result<SimConfig> bad = configByName("evrr", gpu);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(bad.status().message().find("accepted"), std::string::npos);
}

TEST(ServiceProtocol, WireFramingRoundTripDetectsDamage)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

    Json msg = Json::object();
    msg.set("type", "ping");
    msg.set("n", 42);
    ASSERT_TRUE(writeServiceMessage(fds[0], msg).ok());

    MessageReader reader(fds[1]);
    Result<Json> got = reader.next(1000);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().at("type").asString(), "ping");
    EXPECT_EQ(got.value().at("n").asU64(), 42u);

    // A damaged line is DataLoss, and the stream keeps working after.
    std::string garbage = "{\"schema\":999,\"oops\":true}\n";
    ASSERT_EQ(::send(fds[0], garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    Result<Json> bad = reader.next(1000);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::DataLoss);

    ASSERT_TRUE(writeServiceMessage(fds[0], msg).ok());
    Result<Json> again = reader.next(1000);
    ASSERT_TRUE(again.ok());

    // Idle timeout is DeadlineExceeded; peer close is Unavailable.
    Result<Json> idle = reader.next(30);
    ASSERT_FALSE(idle.ok());
    EXPECT_EQ(idle.status().code(), ErrorCode::DeadlineExceeded);
    ::close(fds[0]);
    Result<Json> eof = reader.next(1000);
    ASSERT_FALSE(eof.ok());
    EXPECT_EQ(eof.status().code(), ErrorCode::Unavailable);
    ::close(fds[1]);
}

TEST(RequestJournal, ReplayLastAdmissionWinsAndReopensDoneRequests)
{
    TempDir dir;
    std::string path = dir.path + "/service.journal";

    Json spec1 = Json::object();
    spec1.set("client", "a");
    Json spec2 = Json::object();
    spec2.set("client", "b");

    {
        RequestJournal j;
        ASSERT_TRUE(j.open(path).ok());
        j.recordRequest("r1", spec1);
        j.recordDone("r1");
        // Resume-of-a-resume: the same id admitted again supersedes the
        // earlier spec AND makes the request live again.
        j.recordRequest("r1", spec2);
        j.recordRequest("r2", spec1);
    }
    Result<RequestJournal::Replay> rep = RequestJournal::replay(path);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().specs.size(), 2u);
    EXPECT_EQ(rep.value().specs.at("r1").at("client").asString(), "b");
    EXPECT_EQ(rep.value().duplicates, 1u);
    EXPECT_EQ(rep.value().done.count("r1"), 0u);
    EXPECT_EQ(rep.value().damaged, 0u);

    {
        RequestJournal j;
        ASSERT_TRUE(j.open(path).ok());
        j.recordDone("r1");
    }
    rep = RequestJournal::replay(path);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().done.count("r1"), 1u);
    EXPECT_EQ(rep.value().done.count("r2"), 0u);
}

TEST(SweepJournalReplay, DuplicateTerminalRecordsLastWinsAndCounted)
{
    TempDir dir;
    std::string path = dir.path + "/sweep.journal";

    RunResult r1;
    r1.workload = "w";
    r1.config = "baseline";
    r1.frames = 1;
    r1.width = 8;
    r1.height = 8;
    r1.image_crc = 111;
    RunResult r2 = r1;
    r2.image_crc = 222;

    {
        SweepJournal j;
        ASSERT_TRUE(j.open(path).ok());
        j.recordStart("k");
        j.recordFinish("k", r1, 1);
        // Resume-of-a-resume: a second terminal record for the same key.
        j.recordStart("k");
        j.recordFinish("k", r2, 2);
    }
    Result<SweepJournal::Replay> rep = SweepJournal::replay(path);
    ASSERT_TRUE(rep.ok());
    ASSERT_EQ(rep.value().outcomes.count("k"), 1u);
    EXPECT_EQ(rep.value().outcomes.at("k").result.image_crc, 222u);
    EXPECT_EQ(rep.value().duplicates, 1u);
    EXPECT_EQ(rep.value().in_flight, 0u);
}

TEST(SweepJournalReplay, RunnerResumeSurfacesDuplicateCount)
{
    TempDir dir;
    BenchParams params = tinyParams(dir.path);

    // A real result to journal (also gives us the job key).
    ExperimentRunner first(workloads::factory(), params);
    SimConfig baseline = SimConfig::baseline(params.gpuConfig());
    Result<RunResult> real = first.tryRun("ccs", baseline);
    ASSERT_TRUE(real.ok());
    std::string key = first.jobKey("ccs", baseline);

    // Forge a journal with two terminal records for that key, as a
    // resume-of-a-resume leaves behind.
    std::string jpath = dir.path + "/sweep.journal";
    std::filesystem::remove(jpath);
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(jpath).ok());
        j.recordFinish(key, real.value(), 1);
        j.recordFinish(key, real.value(), 1);
    }

    BenchParams resumed = params;
    resumed.resume = true;
    resumed.use_cache = true;
    ExperimentRunner second(workloads::factory(), resumed);
    Result<RunResult> replayed = second.tryRun("ccs", baseline);
    ASSERT_TRUE(replayed.ok());

    SweepStats stats = second.sweepStats();
    EXPECT_EQ(stats.resumed, 1u);
    EXPECT_EQ(stats.resume_duplicates, 1u);
    EXPECT_EQ(stats.simulated, 0u); // served from the journal, not re-run
    EXPECT_EQ(replayed.value().toJson(false).dump(0),
              real.value().toJson(false).dump(0));
}

TEST(ServiceAdmission, QueueFullShedsWithStructuredStatus)
{
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    ServiceConfig sc = serviceConfig(sock);
    sc.queue_max = 2; // any 3-run request is deterministically shed
    SweepService service(workloads::factory(), tinyParams(dir.path), sc);
    ASSERT_TRUE(service.start().ok());

    ClientOptions o = clientOptions(sock, "greedy");
    o.retries = 1; // shed is retryable; budget of one retry, then fail
    ServiceClient client(o);
    Result<SweepReply> r = client.runSweep(
        "q1", {{"ccs", "baseline"}, {"ccs", "evr"}, {"ccs", "re"}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(r.status().message().find("EVRSIM_QUEUE_MAX"),
              std::string::npos);

    SweepService::Stats st = service.stats();
    EXPECT_EQ(st.shed_queue_full, 2u); // initial attempt + one retry
    EXPECT_EQ(st.requests_admitted, 0u);
    EXPECT_EQ(service.runner().sweepStats().requested, 0u);

    // A request that fits still goes through.
    ServiceClient ok_client(clientOptions(sock, "modest"));
    Result<SweepReply> ok = ok_client.runSweep("q2", {{"ccs", "baseline"}});
    ASSERT_TRUE(ok.ok());
    service.drain();
}

TEST(ServiceAdmission, PerClientQuotaEnforced)
{
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    ServiceConfig sc = serviceConfig(sock);
    sc.queue_max = 100;
    sc.client_quota = 1;
    SweepService service(workloads::factory(), tinyParams(dir.path), sc);
    ASSERT_TRUE(service.start().ok());

    ClientOptions o = clientOptions(sock, "hog");
    o.retries = 0;
    ServiceClient client(o);
    Result<SweepReply> r =
        client.runSweep("u1", {{"ccs", "baseline"}, {"ccs", "evr"}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::ResourceExhausted);
    EXPECT_NE(r.status().message().find("EVRSIM_CLIENT_QUOTA"),
              std::string::npos);
    EXPECT_NE(r.status().message().find("hog"), std::string::npos);
    EXPECT_EQ(service.stats().shed_quota, 1u);

    // Within quota passes.
    Result<SweepReply> ok = client.runSweep("u2", {{"ccs", "baseline"}});
    ASSERT_TRUE(ok.ok());
    service.drain();
}

TEST(ServiceSingleFlight, ConcurrentClientsSimulateEachConfigOnce)
{
    metricsReset();
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    SweepService service(workloads::factory(), tinyParams(dir.path),
                         serviceConfig(sock));
    ASSERT_TRUE(service.start().ok());

    const std::vector<ClientRunSpec> runs = {{"ccs", "baseline"},
                                             {"ccs", "evr"}};
    constexpr int kClients = 4;
    std::vector<Result<SweepReply>> replies(
        kClients, Result<SweepReply>(Status::unavailable("unset")));
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ServiceClient c(
                clientOptions(sock, "c" + std::to_string(i)));
            replies[i] =
                c.runSweep("sf-" + std::to_string(i), runs);
        });
    for (std::thread &t : threads)
        t.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(replies[i].ok()) << replies[i].status().message();
        ASSERT_EQ(replies[i].value().runs.size(), runs.size());
        for (std::size_t j = 0; j < runs.size(); ++j) {
            const ClientRunOutcome &out = replies[i].value().runs[j];
            ASSERT_TRUE(out.status.ok());
            ASSERT_FALSE(out.result_json.empty());
            // Byte-identical across every client.
            EXPECT_EQ(out.result_json,
                      replies[0].value().runs[j].result_json);
        }
    }

    // The single-flight property: 8 requested runs, 2 unique configs,
    // exactly 2 simulations — the rest memo hits (in-flight or done).
    SweepStats stats = service.runner().sweepStats();
    EXPECT_EQ(stats.requested, 8u);
    EXPECT_EQ(stats.simulated, 2u);
    EXPECT_EQ(stats.memo_hits + stats.disk_hits, 6u);

    // And the service-level counters agree.
    Result<double> reqs = metricsValue("evrsim_service_requests_total",
                                       {{"kind", "sweep"}});
    ASSERT_TRUE(reqs.ok());
    EXPECT_EQ(reqs.value(), 4.0);
    Result<double> conns =
        metricsValue("evrsim_service_connections_total");
    ASSERT_TRUE(conns.ok());
    EXPECT_GE(conns.value(), 4.0);

    SweepService::Stats st = service.stats();
    EXPECT_EQ(st.requests_admitted, 4u);
    EXPECT_EQ(st.requests_completed, 4u);
    EXPECT_EQ(st.runs_completed, 8u);
    EXPECT_EQ(st.runs_failed, 0u);
    service.drain();
}

TEST(ServiceClientRetry, BacksOffUntilSlowStartingDaemonArrives)
{
    TempDir dir;
    std::string sock = dir.path + "/s.sock";

    ClientOptions o = clientOptions(sock, "early");
    o.retries = 30;
    o.backoff_base_ms = 25;
    o.backoff_cap_ms = 100;
    Result<SweepReply> reply = Status::unavailable("unset");
    std::thread client_thread([&] {
        ServiceClient c(o);
        reply = c.runSweep("slow-1", {{"ccs", "baseline"}});
    });

    // The daemon arrives well after the client's first attempts.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    SweepService service(workloads::factory(), tinyParams(dir.path),
                         serviceConfig(sock));
    ASSERT_TRUE(service.start().ok());
    client_thread.join();

    ASSERT_TRUE(reply.ok()) << reply.status().message();
    EXPECT_GT(reply.value().connect_attempts, 1);
    service.drain();
}

TEST(ServiceDeadline, ExpiresWhenNoDaemonEverArrives)
{
    TempDir dir;
    ClientOptions o = clientOptions(dir.path + "/nobody.sock", "d");
    o.retries = 1000;
    o.deadline_ms = 250;
    o.backoff_base_ms = 20;
    ServiceClient c(o);
    auto t0 = std::chrono::steady_clock::now();
    Result<SweepReply> r = c.runSweep("dl-1", {{"ccs", "baseline"}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::DeadlineExceeded);
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count(),
              5000);
}

TEST(ServiceCrashRecovery, KillNineRestartAttachIsByteIdentical)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads in the daemon child is not "
                    "supported under sanitizers";
#endif
    TempDir dir_crash, dir_ref;
    std::string sock = dir_crash.path + "/s.sock";
    const std::vector<ClientRunSpec> runs = {{"ccs", "baseline"},
                                             {"ccs", "evr"}};

    // Daemon in a child process, so SIGKILL is a true crash.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::alarm(120); // backstop: never outlive the test
        BenchParams p = tinyParams(dir_crash.path);
        p.resume = true;
        SweepService svc(workloads::factory(), p, serviceConfig(sock));
        if (!svc.start().ok())
            ::_exit(3);
        for (;;)
            ::pause();
    }
    ASSERT_TRUE(waitForSocket(sock, 10000));

    // Submit, then SIGKILL the daemon at the first progress record —
    // mid-sweep, after the request and at least one run are journaled.
    ClientOptions o = clientOptions(sock, "victim");
    o.retries = 0;
    std::atomic<bool> killed{false};
    ServiceClient c1(o);
    Result<SweepReply> first = c1.runSweep("crash-1", runs, [&](const Json &) {
        if (!killed.exchange(true))
            ::kill(pid, SIGKILL);
    });
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
    // `first` usually failed mid-stream; on a fast box the reply may
    // have fully landed before the signal — both are fine here.

    // Restart "the daemon" on the same cache dir (in-process now) and
    // reconnect by bare request id: the spec comes from the request
    // journal, completed runs from the sweep journal/result cache.
    BenchParams p2 = tinyParams(dir_crash.path);
    p2.resume = true;
    SweepService restarted(workloads::factory(), p2, serviceConfig(sock));
    ASSERT_TRUE(restarted.start().ok());
    EXPECT_GE(restarted.stats().resumed_requests, 1u);
    ServiceClient c2(clientOptions(sock, "victim"));
    Result<SweepReply> recovered = c2.attach("crash-1");
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    ASSERT_EQ(recovered.value().runs.size(), runs.size());
    restarted.drain();

    // Reference: the same request against a never-crashed daemon.
    BenchParams pref = tinyParams(dir_ref.path);
    std::string ref_sock = dir_ref.path + "/s.sock";
    SweepService reference(workloads::factory(), pref,
                           serviceConfig(ref_sock));
    ASSERT_TRUE(reference.start().ok());
    ServiceClient c3(clientOptions(ref_sock, "victim"));
    Result<SweepReply> expected = c3.runSweep("crash-1", runs);
    ASSERT_TRUE(expected.ok());
    reference.drain();

    ASSERT_EQ(expected.value().runs.size(), recovered.value().runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        ASSERT_TRUE(recovered.value().runs[i].status.ok());
        ASSERT_FALSE(recovered.value().runs[i].result_json.empty());
        EXPECT_EQ(recovered.value().runs[i].result_json,
                  expected.value().runs[i].result_json)
            << runs[i].workload << "/" << runs[i].config;
    }
}

TEST(ServiceDrain, RefusesNewRequestsAndUnknownAttachIsNotFound)
{
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    SweepService service(workloads::factory(), tinyParams(dir.path),
                         serviceConfig(sock));
    ASSERT_TRUE(service.start().ok());

    ClientOptions o = clientOptions(sock, "late");
    o.retries = 0;
    ServiceClient client(o);
    Result<SweepReply> missing = client.attach("never-submitted");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), ErrorCode::NotFound);

    service.drain();
    Result<SweepReply> r = client.runSweep("late-1", {{"ccs", "baseline"}});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::Unavailable);
}

TEST(ServiceSocket, LiveSocketRefusedStaleSocketReplaced)
{
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    BenchParams params = tinyParams(dir.path);

    SweepService owner(workloads::factory(), params, serviceConfig(sock));
    ASSERT_TRUE(owner.start().ok());

    SweepService rival(workloads::factory(), params, serviceConfig(sock));
    Status second = rival.start();
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.code(), ErrorCode::Unavailable);
    EXPECT_NE(second.message().find("another daemon"), std::string::npos);

    owner.drain(); // unlinks the socket

    // A stale socket file (owner crashed without unlinking) is replaced.
    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // not listening: a connect probe now fails
    }
    SweepService successor(workloads::factory(), params,
                           serviceConfig(sock));
    ASSERT_TRUE(successor.start().ok());
    ServiceClient probe(clientOptions(sock, "probe"));
    ASSERT_TRUE(probe.ping().ok());
    successor.drain();
}

TEST(CooperativeShutdown, ShedsPendingJobsWithCancelledAndExitCode)
{
    resetShutdownForTest();
    EXPECT_FALSE(shutdownRequested());
    EXPECT_EQ(shutdownExitCode(0), 0);

    requestShutdown(SIGTERM);
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGTERM);
    EXPECT_EQ(shutdownExitCode(0), 143);
    EXPECT_EQ(shutdownExitCode(1), 143);

    // Jobs not yet started are shed with Cancelled; the batch reports
    // them as failures and the stats count them.
    BenchParams p = tinyParams("");
    ExperimentRunner runner(workloads::factory(), p);
    SimConfig baseline = SimConfig::baseline(p.gpuConfig());
    BatchOutcome out = runner.runAllChecked({{"ccs", baseline}});
    ASSERT_EQ(out.failures.size(), 1u);
    EXPECT_EQ(out.failures[0].status.code(), ErrorCode::Cancelled);
    EXPECT_EQ(runner.sweepStats().cancelled, 1u);
    EXPECT_EQ(runner.sweepStats().simulated, 0u);

    resetShutdownForTest();
    EXPECT_EQ(shutdownExitCode(0), 0);

    // SIGINT maps to 130.
    requestShutdown(SIGINT);
    EXPECT_EQ(shutdownExitCode(0), 130);
    resetShutdownForTest();
}

TEST(ServiceKnobs, TypoedKnobFailsNamingTheVariable)
{
    BenchParams params = tinyParams("/tmp/x");

    ::setenv("EVRSIM_QUEUE_MAX", "abc", 1);
    Result<ServiceConfig> bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_QUEUE_MAX"),
              std::string::npos);
    ::unsetenv("EVRSIM_QUEUE_MAX");

    ::setenv("EVRSIM_CLIENT_QUOTA", "0", 1); // below the minimum of 1
    bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_CLIENT_QUOTA"),
              std::string::npos);
    ::unsetenv("EVRSIM_CLIENT_QUOTA");

    ::setenv("EVRSIM_QUEUE_MAX", "7", 1);
    ::setenv("EVRSIM_CLIENT_QUOTA", "3", 1);
    ::setenv("EVRSIM_SOCKET", "/tmp/custom.sock", 1);
    Result<ServiceConfig> good = serviceConfigFromEnvChecked(params);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().queue_max, 7);
    EXPECT_EQ(good.value().client_quota, 3);
    EXPECT_EQ(good.value().socket_path, "/tmp/custom.sock");
    ::unsetenv("EVRSIM_QUEUE_MAX");
    ::unsetenv("EVRSIM_CLIENT_QUOTA");
    ::unsetenv("EVRSIM_SOCKET");

    ::setenv("EVRSIM_SHARDS", "-1", 1); // below the minimum of 0
    bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_SHARDS"),
              std::string::npos);

    ::setenv("EVRSIM_SHARDS", "3", 1);
    Result<ServiceConfig> sharded = serviceConfigFromEnvChecked(params);
    ASSERT_TRUE(sharded.ok());
    EXPECT_EQ(sharded.value().fleet.shards, 3);
    ::unsetenv("EVRSIM_SHARDS");

    // Defaults: socket lands next to the cache.
    Result<ServiceConfig> defaults = serviceConfigFromEnvChecked(params);
    ASSERT_TRUE(defaults.ok());
    EXPECT_EQ(defaults.value().socket_path, "/tmp/x/evrsim.sock");
    EXPECT_EQ(defaults.value().queue_max, 256);
    EXPECT_EQ(defaults.value().client_quota, 64);
    // The library default is fleet-off; the daemon binary supplies
    // the cores/4 default on top.
    EXPECT_EQ(defaults.value().fleet.shards, 0);
}

TEST(ServiceKnobs, FleetListenAndLeaseKnobsParse)
{
    BenchParams params = tinyParams("/tmp/x");

    // A listen address that cannot be split into host:port fails
    // naming the variable, not at bind time.
    ::setenv("EVRSIM_FLEET_LISTEN", "no-port-here", 1);
    Result<ServiceConfig> bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_FLEET_LISTEN"),
              std::string::npos);

    ::setenv("EVRSIM_FLEET_LISTEN", "127.0.0.1:70000", 1);
    bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_FLEET_LISTEN"),
              std::string::npos);

    ::setenv("EVRSIM_FLEET_LISTEN", "127.0.0.1:0", 1);
    ::setenv("EVRSIM_LEASE_MS", "2500", 1);
    Result<ServiceConfig> good = serviceConfigFromEnvChecked(params);
    ASSERT_TRUE(good.ok()) << good.status().toString();
    EXPECT_EQ(good.value().fleet.listen, "127.0.0.1:0");
    EXPECT_EQ(good.value().fleet.lease_ms, 2500);

    ::setenv("EVRSIM_LEASE_MS", "50", 1); // below the 100 ms floor
    bad = serviceConfigFromEnvChecked(params);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("EVRSIM_LEASE_MS"),
              std::string::npos);

    ::unsetenv("EVRSIM_FLEET_LISTEN");
    ::unsetenv("EVRSIM_LEASE_MS");
    Result<ServiceConfig> defaults = serviceConfigFromEnvChecked(params);
    ASSERT_TRUE(defaults.ok());
    EXPECT_TRUE(defaults.value().fleet.listen.empty());
    EXPECT_EQ(defaults.value().fleet.lease_ms, 5000);
}

TEST(ServiceSocket, RacingDaemonsResolveToExactlyOneOwner)
{
    // Two daemons racing the probe -> unlink -> bind sequence on the
    // same socket path: the flock sidecar must pick exactly one owner
    // every round, never zero and never two.
    TempDir dir;
    std::string sock = dir.path + "/race.sock";
    BenchParams params = tinyParams(dir.path);

    for (int round = 0; round < 3; ++round) {
        SweepService a(workloads::factory(), params,
                       serviceConfig(sock));
        SweepService b(workloads::factory(), params,
                       serviceConfig(sock));
        Status sa, sb;
        std::atomic<int> ready{0};
        std::thread ta([&] {
            ++ready;
            while (ready.load() < 2) {
            }
            sa = a.start();
        });
        std::thread tb([&] {
            ++ready;
            while (ready.load() < 2) {
            }
            sb = b.start();
        });
        ta.join();
        tb.join();

        ASSERT_NE(sa.ok(), sb.ok())
            << "round " << round << ": exactly one owner, got "
            << sa.toString() << " / " << sb.toString();
        const Status &loser = sa.ok() ? sb : sa;
        EXPECT_EQ(loser.code(), ErrorCode::Unavailable);

        SweepService &winner = sa.ok() ? a : b;
        ServiceClient probe(clientOptions(sock, "probe"));
        EXPECT_TRUE(probe.ping().ok()) << "round " << round;
        winner.drain(); // releases the lock for the next round
    }
}

TEST(ServiceSigpipe, ClientVanishingMidStreamDoesNotKillTheDaemon)
{
    // A client that submits a sweep and disappears before the reply:
    // every subsequent daemon write lands on a dead socket. The
    // request must still run to completion (cache + journal serve a
    // later attach) and the daemon must survive to serve the next
    // client — an unhandled SIGPIPE would kill the whole process and
    // fail this test binary outright.
    TempDir dir;
    std::string sock = dir.path + "/s.sock";
    BenchParams params = tinyParams(dir.path);

    SweepService service(workloads::factory(), params,
                         serviceConfig(sock));
    ASSERT_TRUE(service.start().ok());

    {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        struct sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      sock.c_str());
        ASSERT_EQ(
            ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)),
            0);
        Json req = Json::object();
        req.set("type", "sweep");
        req.set("id", "vanishing-client");
        req.set("client", "ghost");
        Json runs = Json::array();
        Json run = Json::object();
        run.set("workload", workloads::allAliases().front());
        run.set("config", "baseline");
        runs.push(std::move(run));
        req.set("runs", std::move(runs));
        ASSERT_TRUE(writeServiceMessage(fd, std::move(req)).ok());
        // Vanish mid-stream: the accepted/progress/result frames all
        // hit a closed peer.
        ::close(fd);
    }

    // The orphaned request still completes...
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service.stats().requests_completed < 1 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(service.stats().requests_completed, 1u);

    // ...and the daemon is alive and serving afterwards: a reconnect
    // by the same idempotent id gets the full reply.
    ServiceClient client(clientOptions(sock, "ghost"));
    Result<SweepReply> attached = client.attach("vanishing-client");
    ASSERT_TRUE(attached.ok()) << attached.status().toString();
    ASSERT_EQ(attached.value().runs.size(), 1u);
    EXPECT_TRUE(attached.value().runs[0].status.ok());

    service.drain();
}

// --- mid-stream progress damage ------------------------------------
//
// A fake daemon that serves each accepted connection with a scripted
// handler, so tests can damage the progress stream in ways the real
// daemon never would: duplicate a record, corrupt a line's bytes, or
// cut a line in half and vanish. The client contract under every kind
// of damage is the same — surface a structured error and resubmit
// under the idempotent id, never hang and never return a partial
// table.

struct ScriptedServer {
    int listen_fd = -1;
    std::thread thread;

    ScriptedServer(const std::string &path,
                   std::vector<std::function<void(int fd)>> scripts)
    {
        listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        EXPECT_GE(listen_fd, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        EXPECT_EQ(::bind(listen_fd,
                         reinterpret_cast<struct sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        EXPECT_EQ(::listen(listen_fd, 8), 0);
        thread = std::thread([this, scripts = std::move(scripts)] {
            for (const auto &script : scripts) {
                int fd = ::accept(listen_fd, nullptr, nullptr);
                if (fd < 0)
                    return;
                script(fd);
                ::close(fd);
            }
        });
    }

    ~ScriptedServer()
    {
        if (listen_fd >= 0) {
            ::shutdown(listen_fd, SHUT_RDWR);
            ::close(listen_fd);
        }
        if (thread.joinable())
            thread.join();
    }
};

std::string
framedLine(Json payload)
{
    return wrapEnvelope(std::move(payload), kServiceProtocolVersion)
               .dump(0) +
           "\n";
}

void
sendRaw(int fd, const std::string &bytes)
{
    ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
}

Json
progressMsg(const std::string &id, std::uint64_t completed,
            std::uint64_t total)
{
    Json p = Json::object();
    p.set("type", "progress");
    p.set("id", id);
    p.set("completed", completed);
    p.set("total", total);
    p.set("workload", "w");
    p.set("config", "base");
    p.set("ok", false);
    p.set("final", false);
    return p;
}

/** Drain the client's request, then send `accepted`. */
void
acceptRequest(int fd, const std::string &id)
{
    MessageReader reader(fd);
    Result<Json> req = reader.next(2000);
    EXPECT_TRUE(req.ok());
    Json acc = Json::object();
    acc.set("type", "accepted");
    acc.set("id", id);
    sendRaw(fd, framedLine(std::move(acc)));
}

/** A complete (failed-run) result message: enough for parseResult. */
void
serveResult(int fd, const std::string &id)
{
    acceptRequest(fd, id);
    Json run = Json::object();
    run.set("workload", "w");
    run.set("config", "base");
    run.set("ok", false);
    run.set("status", statusToJson(Status::internal("scripted run")));
    Json runs = Json::array();
    runs.push(std::move(run));
    Json res = Json::object();
    res.set("type", "result");
    res.set("id", id);
    res.set("runs", std::move(runs));
    res.set("elapsed_s", 0.0);
    sendRaw(fd, framedLine(std::move(res)));
}

ClientOptions
damageClientOptions(const std::string &socket_path)
{
    ClientOptions o = clientOptions(socket_path, "damage-client");
    o.deadline_ms = 10000; // damage must never hang the client
    return o;
}

TEST(ServiceClientStreamDamage, DuplicatedProgressRecordResubmits)
{
    TempDir tmp;
    std::string sock = tmp.path + "/scripted.sock";
    const std::string id = "dup-progress";

    ScriptedServer server(
        sock, {[&](int fd) {
                   acceptRequest(fd, id);
                   std::string p = framedLine(progressMsg(id, 1, 2));
                   sendRaw(fd, p);
                   sendRaw(fd, p); // wire-dup: completed=1 twice
                   // Hold the connection open; the client must give
                   // up on its own, not because we hung up.
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(500));
               },
               [&](int fd) { serveResult(fd, id); }});

    std::vector<std::uint64_t> seen;
    ServiceClient client(damageClientOptions(sock));
    Result<SweepReply> reply = client.runSweep(
        id, {{"w", "base"}}, [&](const Json &p) {
            if (const Json *c = p.find("completed"))
                seen.push_back(c->asU64());
        });
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply.value().resubmits, 1);
    ASSERT_EQ(reply.value().runs.size(), 1u);
    // The duplicated record was never forwarded to the callback.
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GT(seen[i], seen[i - 1]);
}

TEST(ServiceClientStreamDamage, CorruptedProgressLineResubmits)
{
    TempDir tmp;
    std::string sock = tmp.path + "/scripted.sock";
    const std::string id = "corrupt-progress";

    ScriptedServer server(
        sock, {[&](int fd) {
                   acceptRequest(fd, id);
                   std::string p = framedLine(progressMsg(id, 1, 2));
                   p[p.size() / 2] ^= 0x20; // CRC now lies
                   sendRaw(fd, p);
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(500));
               },
               [&](int fd) { serveResult(fd, id); }});

    ServiceClient client(damageClientOptions(sock));
    Result<SweepReply> reply =
        client.runSweep(id, {{"w", "base"}}, nullptr);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply.value().resubmits, 1);
    ASSERT_EQ(reply.value().runs.size(), 1u);
}

TEST(ServiceClientStreamDamage, TruncatedProgressLineResubmits)
{
    TempDir tmp;
    std::string sock = tmp.path + "/scripted.sock";
    const std::string id = "torn-progress";

    ScriptedServer server(
        sock, {[&](int fd) {
                   acceptRequest(fd, id);
                   std::string p = framedLine(progressMsg(id, 1, 2));
                   // Half a line, then vanish: the client sees a torn
                   // fragment at EOF, not a parseable record.
                   sendRaw(fd, p.substr(0, p.size() / 2));
               },
               [&](int fd) { serveResult(fd, id); }});

    ServiceClient client(damageClientOptions(sock));
    Result<SweepReply> reply =
        client.runSweep(id, {{"w", "base"}}, nullptr);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply.value().resubmits, 1);
    ASSERT_EQ(reply.value().runs.size(), 1u);
}

} // namespace
} // namespace evrsim
