/**
 * @file
 * Tests for Rendering Elimination: the Signature Buffer, skip decisions,
 * end-to-end tile reuse correctness, and the stall/energy accounting the
 * evaluation depends on.
 */
#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "re/rendering_elimination.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

ShadedPrimitive
primWithCrc(std::uint32_t crc, std::uint32_t bytes = 128)
{
    ShadedPrimitive p;
    p.attr_crc = crc;
    p.attr_bytes = bytes;
    return p;
}

} // namespace

// ---------------------------------------------------- SignatureBuffer --

TEST(SignatureBuffer, FreshBufferNeverMatches)
{
    SignatureBuffer sb(4);
    EXPECT_FALSE(sb.matchesPrevious(0));
    EXPECT_FALSE(sb.previousValid(0));
}

TEST(SignatureBuffer, EmptyTileMatchesAfterFirstRotation)
{
    SignatureBuffer sb(4);
    sb.rotate();
    // Both frames empty: signatures equal.
    EXPECT_TRUE(sb.matchesPrevious(0));
}

TEST(SignatureBuffer, SamePrimitiveSequenceMatches)
{
    SignatureBuffer sb(2);
    sb.combine(0, 0xdeadbeef, 100);
    sb.combine(0, 0x12345678, 140);
    sb.rotate();
    sb.resetCurrent();
    sb.combine(0, 0xdeadbeef, 100);
    sb.combine(0, 0x12345678, 140);
    EXPECT_TRUE(sb.matchesPrevious(0));
    // Untouched tile also matches (empty == empty).
    EXPECT_TRUE(sb.matchesPrevious(1));
}

TEST(SignatureBuffer, ChangedPrimitiveBreaksMatch)
{
    SignatureBuffer sb(1);
    sb.combine(0, 0xdeadbeef, 100);
    sb.rotate();
    sb.resetCurrent();
    sb.combine(0, 0xdeadbeee, 100); // one bit differs
    EXPECT_FALSE(sb.matchesPrevious(0));
}

TEST(SignatureBuffer, OrderMatters)
{
    SignatureBuffer sb(2);
    sb.combine(0, 0xaaaa0001, 64);
    sb.combine(0, 0xbbbb0002, 64);
    sb.combine(1, 0xbbbb0002, 64);
    sb.combine(1, 0xaaaa0001, 64);
    // The per-tile signature encodes order (shift-then-xor), exactly as
    // concatenating the attribute streams would.
    EXPECT_NE(sb.current(0).crc, sb.current(1).crc);
}

TEST(SignatureBuffer, MissingPrimitiveBreaksMatch)
{
    SignatureBuffer sb(1);
    sb.combine(0, 0xaaaa0001, 64);
    sb.combine(0, 0xbbbb0002, 64);
    sb.rotate();
    sb.resetCurrent();
    sb.combine(0, 0xaaaa0001, 64);
    EXPECT_FALSE(sb.matchesPrevious(0));
}

TEST(SignatureBuffer, SignatureEqualsConcatenatedCrc)
{
    // The incremental per-tile combine must equal hashing the
    // concatenated attribute blocks in one go.
    std::vector<unsigned char> blk_a(100), blk_b(60);
    Rng rng(5);
    for (auto *blk : {&blk_a, &blk_b})
        for (auto &byte : *blk)
            byte = static_cast<unsigned char>(rng.nextBelow(256));

    SignatureBuffer sb(1);
    sb.combine(0, Crc32::of(blk_a.data(), blk_a.size()),
               static_cast<std::uint32_t>(blk_a.size()));
    sb.combine(0, Crc32::of(blk_b.data(), blk_b.size()),
               static_cast<std::uint32_t>(blk_b.size()));

    std::vector<unsigned char> cat = blk_a;
    cat.insert(cat.end(), blk_b.begin(), blk_b.end());
    EXPECT_EQ(sb.current(0).crc, Crc32::of(cat.data(), cat.size()));
    EXPECT_EQ(sb.current(0).length, cat.size());
}

// ----------------------------------------------- RenderingElimination --

TEST(RenderingElimination, ExcludedPrimitiveSkipsUpdate)
{
    RenderingElimination re(2);
    FrameStats stats;
    re.frameStart();
    re.addPrimitive(0, primWithCrc(0x1111), false, stats);
    re.addPrimitive(0, primWithCrc(0x2222), true, stats); // EVR-excluded
    EXPECT_EQ(stats.signature_updates, 1u);
    EXPECT_EQ(stats.signature_updates_skipped, 1u);
    EXPECT_EQ(stats.signature_shift_bytes, 128u);

    // The excluded primitive left no trace: a tile seeing only the
    // included one has the same signature.
    re.addPrimitive(1, primWithCrc(0x1111), false, stats);
    EXPECT_EQ(re.signatureBuffer().current(0),
              re.signatureBuffer().current(1));
}

TEST(RenderingElimination, SkipDecisionCountsCompare)
{
    RenderingElimination re(1);
    FrameStats stats;
    re.frameStart();
    EXPECT_FALSE(re.shouldSkipTile(0, stats)); // no previous frame
    re.frameEnd();
    re.frameStart();
    EXPECT_TRUE(re.shouldSkipTile(0, stats)); // empty == empty
    EXPECT_EQ(stats.signature_compares, 2u);
}

// ---------------------------------------------- End-to-end behaviour --

namespace {

class ReEndToEnd : public ::testing::Test
{
  protected:
    ReEndToEnd()
        : sim(SimConfig::renderingElimination(tinyGpu())),
          quad(meshes::quad({1, 1, 1, 1}))
    {
        sim.uploadMesh(quad);
    }

    /** One static quad plus one whose tint animates with the frame. */
    Scene
    frame(int i)
    {
        Scene scene;
        setCamera2D(scene, 64, 48);
        RenderState rs; // default WOZ opaque
        DrawCommand &stat =
            submitRect(scene, &quad, 2, 2, 10, 10, 0.5f, rs);
        stat.tint = {0, 1, 0, 1};
        DrawCommand &anim =
            submitRect(scene, &quad, 40, 20, 10, 10, 0.5f, rs);
        anim.tint = {0.5f + 0.4f * ((i % 10) / 10.0f), 0, 0, 1};
        return scene;
    }

    GpuSimulator sim;
    Mesh quad;
};

} // namespace

TEST_F(ReEndToEnd, SecondFrameSkipsStaticTilesOnly)
{
    sim.renderFrame(frame(0));
    FrameStats s1 = sim.renderFrame(frame(1));

    // 4x3 = 12 tiles. The animated quad at (40..50, 20..30) touches
    // tiles (2,1) and (3,1); everything else is static.
    EXPECT_EQ(s1.tiles_total, 12u);
    EXPECT_EQ(s1.tiles_skipped_re, 10u);
}

TEST_F(ReEndToEnd, SkippedTilesKeepExactColors)
{
    sim.renderFrame(frame(0));

    // Render the same frame content again: every tile skips, and the
    // output must equal a from-scratch render by a baseline GPU.
    FrameStats s = sim.renderFrame(frame(0));
    EXPECT_EQ(s.tiles_skipped_re, 12u);

    GpuSimulator baseline(SimConfig::baseline(tinyGpu()));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    baseline.uploadMesh(q2);
    Scene scene;
    setCamera2D(scene, 64, 48);
    RenderState rs;
    DrawCommand &stat = submitRect(scene, &q2, 2, 2, 10, 10, 0.5f, rs);
    stat.tint = {0, 1, 0, 1};
    DrawCommand &anim = submitRect(scene, &q2, 40, 20, 10, 10, 0.5f, rs);
    anim.tint = {0.5f, 0, 0, 1};
    baseline.renderFrame(scene);

    EXPECT_TRUE(sim.framebuffer().equals(baseline.framebuffer()));
}

TEST_F(ReEndToEnd, FirstFrameNeverSkips)
{
    FrameStats s0 = sim.renderFrame(frame(0));
    EXPECT_EQ(s0.tiles_skipped_re, 0u);
}

TEST_F(ReEndToEnd, AnimationCycleKeepsStaticTilesSkipping)
{
    sim.renderFrame(frame(0));
    for (int i = 1; i <= 11; ++i) {
        FrameStats s = sim.renderFrame(frame(i));
        // Static tiles always skip; the animated quad's tiles never do
        // (its tint changes each frame).
        EXPECT_EQ(s.tiles_skipped_re, 10u) << "frame " << i;
    }
}

TEST_F(ReEndToEnd, SkippedTileCostsOnlyTheCompare)
{
    sim.renderFrame(frame(0));
    FrameStats s = sim.renderFrame(frame(0)); // everything skips
    EXPECT_EQ(s.tiles_skipped_re, 12u);
    EXPECT_EQ(s.fragments_generated, 0u);
    EXPECT_EQ(s.tile_flush_bytes, 0u);
    // Raster cycles collapse to the signature compares.
    EXPECT_LT(s.raster_cycles, 200u);
}

TEST_F(ReEndToEnd, OracleStatisticSeesSkippedTilesAsEqual)
{
    sim.renderFrame(frame(0));
    FrameStats s = sim.renderFrame(frame(0));
    EXPECT_EQ(s.tiles_equal_oracle, 12u);
}

TEST(ReOverhead, SignatureWorkAppearsInGeometryCycles)
{
    auto run = [](const SimConfig &cfg) {
        GpuSimulator sim(cfg);
        Mesh q = meshes::quad({1, 1, 1, 1});
        sim.uploadMesh(q);
        Scene scene;
        setCamera2D(scene, 64, 48);
        submitRect(scene, &q, 0, 0, 60, 44, 0.5f, RenderState{});
        return sim.renderFrame(scene);
    };

    FrameStats base = run(SimConfig::baseline(tinyGpu()));
    FrameStats re = run(SimConfig::renderingElimination(tinyGpu()));
    EXPECT_GT(re.signature_updates, 0u);
    EXPECT_GT(re.geometry_cycles, base.geometry_cycles);
    // The raster side is unaffected on the first frame (nothing skips).
    EXPECT_EQ(re.fragments_shaded, base.fragments_shaded);
}
