/**
 * @file
 * Tests for the driver layer: JSON round trips, RunResult persistence,
 * SimConfig validation, energy-event mapping and the experiment
 * runner's on-disk cache.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "driver/experiment.hpp"
#include "driver/report.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

// ----------------------------------------------------------------- Json --

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(Json::parseOrDie("true").asBool(), true);
    EXPECT_EQ(Json::parseOrDie("false").asBool(), false);
    EXPECT_TRUE(Json::parseOrDie("null").isNull());
    EXPECT_DOUBLE_EQ(Json::parseOrDie("3.5").asDouble(), 3.5);
    EXPECT_EQ(Json::parseOrDie("-42").asI64(), -42);
    EXPECT_EQ(Json::parseOrDie("1e3").asDouble(), 1000.0);
    EXPECT_EQ(Json::parseOrDie("\"hi\\nthere\"").asString(), "hi\nthere");
}

TEST(Json, LargeIntegersAreExact)
{
    // Counters up to 2^53 must survive the double representation.
    std::uint64_t big = (1ull << 53) - 1;
    Json j(big);
    EXPECT_EQ(Json::parseOrDie(j.dump()).asU64(), big);
}

TEST(Json, ObjectAndArrayRoundTrip)
{
    Json obj = Json::object();
    obj.set("name", "evr");
    obj.set("count", 42);
    Json arr = Json::array();
    arr.push(1);
    arr.push(2.5);
    arr.push("three");
    obj.set("list", std::move(arr));

    for (int indent : {0, 2}) {
        Json parsed = Json::parseOrDie(obj.dump(indent));
        EXPECT_EQ(parsed.at("name").asString(), "evr");
        EXPECT_EQ(parsed.at("count").asU64(), 42u);
        EXPECT_EQ(parsed.at("list").size(), 3u);
        EXPECT_EQ(parsed.at("list").at(2).asString(), "three");
    }
}

TEST(Json, StringEscapes)
{
    Json j(std::string("a\"b\\c\td\ne"));
    EXPECT_EQ(Json::parseOrDie(j.dump()).asString(), "a\"b\\c\td\ne");
}

TEST(Json, ParseErrorsAreReported)
{
    bool ok = true;
    std::string err;
    Json::parse("{\"a\": }", ok, err);
    EXPECT_FALSE(ok);
    EXPECT_FALSE(err.empty());

    Json::parse("[1, 2", ok, err);
    EXPECT_FALSE(ok);

    Json::parse("42 trailing", ok, err);
    EXPECT_FALSE(ok);
}

TEST(Json, GetWithFallback)
{
    Json obj = Json::object();
    obj.set("present", 1);
    EXPECT_EQ(obj.get("present", Json(0)).asU64(), 1u);
    EXPECT_EQ(obj.get("absent", Json(7)).asU64(), 7u);
}

// ------------------------------------------------------------ RunResult --

namespace {

FrameStats
populatedStats()
{
    FrameStats s;
    s.draw_commands = 1;
    s.vertices_fetched = 2;
    s.fragments_shaded = 1234567;
    s.early_z_kills = 89;
    s.tiles_skipped_re = 17;
    s.casuistry[2] = 5;
    s.geometry_cycles = 111;
    s.raster_cycles = 222;
    s.mem.dram.read_bytes[1] = 999;
    s.mem.vertex_cache.reads = 55;
    s.mem.l2_cache.writebacks = 3;
    return s;
}

} // namespace

TEST(RunResult, FrameStatsRoundTrip)
{
    FrameStats s = populatedStats();
    FrameStats r = frameStatsFromJson(frameStatsToJson(s));
    EXPECT_EQ(r.fragments_shaded, s.fragments_shaded);
    EXPECT_EQ(r.early_z_kills, s.early_z_kills);
    EXPECT_EQ(r.tiles_skipped_re, s.tiles_skipped_re);
    EXPECT_EQ(r.casuistry[2], s.casuistry[2]);
    EXPECT_EQ(r.geometry_cycles, s.geometry_cycles);
    EXPECT_EQ(r.mem.dram.read_bytes[1], s.mem.dram.read_bytes[1]);
    EXPECT_EQ(r.mem.vertex_cache.reads, s.mem.vertex_cache.reads);
    EXPECT_EQ(r.mem.l2_cache.writebacks, s.mem.l2_cache.writebacks);
}

TEST(RunResult, FullRoundTripThroughText)
{
    RunResult r;
    r.workload = "ccs";
    r.config = "evr";
    r.frames = 30;
    r.width = 608;
    r.height = 384;
    r.totals = populatedStats();
    r.energy.dram_nj = 123.5;
    r.energy.evr_hardware_nj = 0.25;
    r.image_crc = 0xabcdef01;

    RunResult back = RunResult::fromJson(Json::parseOrDie(r.toJson().dump(2)));
    EXPECT_EQ(back.workload, "ccs");
    EXPECT_EQ(back.config, "evr");
    EXPECT_EQ(back.frames, 30);
    EXPECT_EQ(back.totals.fragments_shaded, r.totals.fragments_shaded);
    EXPECT_DOUBLE_EQ(back.energy.dram_nj, 123.5);
    EXPECT_DOUBLE_EQ(back.energy.evr_hardware_nj, 0.25);
    EXPECT_EQ(back.image_crc, 0xabcdef01u);
}

TEST(RunResult, DerivedMetrics)
{
    RunResult r;
    r.frames = 2;
    r.width = 10;
    r.height = 10;
    r.totals.tiles_total = 100;
    r.totals.tiles_skipped_re = 25;
    r.totals.tiles_equal_oracle = 50;
    r.totals.fragments_shaded = 400;
    EXPECT_DOUBLE_EQ(r.tilesSkippedRatio(), 0.25);
    EXPECT_DOUBLE_EQ(r.tilesEqualOracleRatio(), 0.5);
    EXPECT_DOUBLE_EQ(r.shadedPerPixel(), 2.0);
}

// ------------------------------------------------------------ SimConfig --

TEST(SimConfig, PresetsAreConsistent)
{
    GpuConfig gpu = tinyGpu();
    for (const SimConfig &c :
         {SimConfig::baseline(gpu), SimConfig::renderingElimination(gpu),
          SimConfig::evr(gpu), SimConfig::evrReorderOnly(gpu),
          SimConfig::evrFilterOnly(gpu), SimConfig::oracleZ(gpu)}) {
        c.validate();
        EXPECT_FALSE(c.name.empty());
    }
    EXPECT_TRUE(SimConfig::evr(gpu).re);
    EXPECT_TRUE(SimConfig::evr(gpu).evr_reorder);
    EXPECT_TRUE(SimConfig::evr(gpu).evr_filter_signature);
    EXPECT_FALSE(SimConfig::evrReorderOnly(gpu).re);
}

TEST(SimConfig, InvalidCombinationsAreFatal)
{
    GpuConfig gpu = tinyGpu();
    SimConfig c = SimConfig::baseline(gpu);
    c.evr_reorder = true; // without evr_predict
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "evr_predict");

    SimConfig f = SimConfig::baseline(gpu);
    f.evr_predict = true;
    f.evr_filter_signature = true; // without RE
    EXPECT_EXIT(f.validate(), ::testing::ExitedWithCode(1),
                "Rendering Elimination");
}

// --------------------------------------------------------- EnergyEvents --

TEST(EnergyMapping, CountersLandInTheRightEvents)
{
    FrameStats s;
    s.geometry_cycles = 100;
    s.raster_cycles = 300;
    s.early_z_tests = 10;
    s.late_z_tests = 5;
    s.signature_updates = 7;
    s.signature_compares = 3;
    s.signature_bytes_hashed = 100;
    s.signature_shift_bytes = 50;
    s.lgt_accesses = 11;
    s.layer_param_bytes = 13;

    SimConfig cfg = SimConfig::evr(tinyGpu());
    EnergyEvents e = toEnergyEvents(s, cfg);
    EXPECT_EQ(e.cycles, 400u);
    EXPECT_EQ(e.depth_tests, 15u);
    EXPECT_EQ(e.signature_buffer_accesses, 2u * 7 + 2u * 3);
    EXPECT_EQ(e.signature_bytes_hashed, 150u);
    EXPECT_EQ(e.lgt_accesses, 11u);
    EXPECT_EQ(e.layer_param_bytes, 13u);
    EXPECT_TRUE(e.re_hardware_present);
    EXPECT_TRUE(e.evr_hardware_present);

    EnergyEvents b = toEnergyEvents(s, SimConfig::baseline(tinyGpu()));
    EXPECT_FALSE(b.re_hardware_present);
    EXPECT_FALSE(b.evr_hardware_present);
}

// ----------------------------------------------------- ExperimentRunner --

namespace {

/** A trivial one-quad workload for cache tests. */
class MiniWorkload : public Workload
{
  public:
    MiniWorkload(int width, int height) : width_(width), height_(height)
    {
        quad_ = meshes::quad({1, 1, 1, 1});
    }

    Info
    info() const override
    {
        return {"mini", "Mini", "Test", false};
    }

    void setup(GpuSimulator &sim) override { sim.uploadMesh(quad_); }

    Scene
    frame(int index) override
    {
        Scene s;
        setCamera2D(s, width_, height_);
        DrawCommand &c = submitRect(s, &quad_, 2, 2, 20, 20, 0.5f,
                                    RenderState{});
        c.tint = {0.5f + 0.1f * (index % 3), 0.2f, 0.2f, 1.0f};
        return s;
    }

  private:
    int width_, height_;
    Mesh quad_;
};

WorkloadFactory
miniFactory()
{
    return [](const std::string &alias, int w, int h)
               -> std::unique_ptr<Workload> {
        if (alias != "mini")
            return nullptr;
        return std::make_unique<MiniWorkload>(w, h);
    };
}

BenchParams
tinyParams(const std::string &cache_dir, bool use_cache = true)
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.use_cache = use_cache;
    p.cache_dir = cache_dir;
    return p;
}

} // namespace

TEST(ExperimentRunner, SimulationIsDeterministic)
{
    BenchParams p = tinyParams("", false);
    ExperimentRunner runner(miniFactory(), p);
    SimConfig cfg = SimConfig::baseline(p.gpuConfig());
    RunResult a = runner.simulate("mini", cfg);
    RunResult b = runner.simulate("mini", cfg);
    EXPECT_EQ(a.image_crc, b.image_crc);
    EXPECT_EQ(a.totals.fragments_shaded, b.totals.fragments_shaded);
    EXPECT_EQ(a.totalCycles(), b.totalCycles());
}

TEST(ExperimentRunner, CacheHitAvoidsResimulation)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "evrsim_cache_test";
    std::filesystem::remove_all(dir);

    BenchParams p = tinyParams(dir.string());
    ExperimentRunner runner(miniFactory(), p);
    SimConfig cfg = SimConfig::baseline(p.gpuConfig());

    RunResult first = runner.run("mini", cfg);
    // A cache file now exists.
    ASSERT_FALSE(std::filesystem::is_empty(dir));

    RunResult second = runner.run("mini", cfg);
    EXPECT_EQ(second.image_crc, first.image_crc);
    EXPECT_EQ(second.totals.fragments_shaded,
              first.totals.fragments_shaded);
    EXPECT_DOUBLE_EQ(second.totalEnergyNj(), first.totalEnergyNj());

    std::filesystem::remove_all(dir);
}

TEST(ExperimentRunner, CorruptCacheEntryIsDiscarded)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "evrsim_cache_corrupt";
    std::filesystem::remove_all(dir);

    BenchParams p = tinyParams(dir.string());
    ExperimentRunner runner(miniFactory(), p);
    SimConfig cfg = SimConfig::baseline(p.gpuConfig());
    RunResult first = runner.run("mini", cfg);

    // Corrupt every cache file.
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        std::FILE *f = std::fopen(entry.path().c_str(), "w");
        std::fputs("{broken", f);
        std::fclose(f);
    }

    RunResult again = runner.run("mini", cfg);
    EXPECT_EQ(again.image_crc, first.image_crc);

    std::filesystem::remove_all(dir);
}

TEST(ExperimentRunner, UnknownAliasIsFatal)
{
    BenchParams p = tinyParams("", false);
    ExperimentRunner runner(miniFactory(), p);
    EXPECT_EXIT(runner.simulate("nope", SimConfig::baseline(p.gpuConfig())),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(ExperimentRunner, DifferentConfigsGetDifferentCacheKeys)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "evrsim_cache_keys";
    std::filesystem::remove_all(dir);

    BenchParams p = tinyParams(dir.string());
    ExperimentRunner runner(miniFactory(), p);
    runner.run("mini", SimConfig::baseline(p.gpuConfig()));
    runner.run("mini", SimConfig::evr(p.gpuConfig()));

    int files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".json")
            ++files;
    EXPECT_EQ(files, 2);
    std::filesystem::remove_all(dir);
}

// --------------------------------------------------------------- Report --

TEST(Report, Formatting)
{
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmtPct(0.4267), "42.7%");
    EXPECT_EQ(bar(0.5, 1.0, 10), "#####");
    EXPECT_EQ(bar(0.0, 1.0, 10), "");
}

TEST(Report, Means)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Report, TableRejectsMismatchedRows)
{
    ReportTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_DEATH(t.addRow({"only-one"}), "assertion");
}
