/**
 * @file
 * Shared helpers for the pipeline test suites.
 */
#ifndef EVRSIM_TESTS_SUPPORT_HPP
#define EVRSIM_TESTS_SUPPORT_HPP

#include <vector>

#include "driver/gpu_simulator.hpp"
#include "gpu/primitive.hpp"
#include "gpu/rasterizer.hpp"
#include "scene/camera.hpp"

namespace evrsim {
namespace test {

/** Build a screen-space primitive directly (bypassing geometry). */
inline ShadedPrimitive
screenTriangle(Vec2 a, Vec2 b, Vec2 c, float depth = 0.5f,
               Vec4 color = {1, 1, 1, 1})
{
    ShadedPrimitive prim;
    prim.v[0] = {a, depth, 1.0f, color, {0, 0}};
    prim.v[1] = {b, depth, 1.0f, color, {1, 0}};
    prim.v[2] = {c, depth, 1.0f, color, {0, 1}};
    prim.updateZNear();
    return prim;
}

/** Collect all fragments a primitive produces inside @p bounds. */
inline std::vector<Fragment>
collectFragments(const ShadedPrimitive &prim, const RectI &bounds)
{
    FrameStats stats;
    std::vector<Fragment> out;
    Rasterizer::rasterize(prim, bounds, stats,
                          [&](const Fragment &f) { out.push_back(f); });
    return out;
}

/** Small GPU configuration for fast pipeline tests. */
inline GpuConfig
tinyGpu(int width = 64, int height = 48)
{
    GpuConfig gpu;
    gpu.screen_width = width;
    gpu.screen_height = height;
    return gpu;
}

/**
 * A screen-space quad draw: two triangles covering the pixel rectangle
 * [x, x+w) x [y, y+h) at depth z, submitted to a 2D-camera scene.
 */
inline DrawCommand &
submitRect(Scene &scene, const Mesh *quad, float x, float y, float w,
           float h, float z, const RenderState &state)
{
    Mat4 m = Mat4::translate({x + w * 0.5f, y + h * 0.5f, z}) *
             Mat4::scale({w, h, 1.0f});
    return scene.submit(quad, m, state);
}

} // namespace test
} // namespace evrsim

#endif // EVRSIM_TESTS_SUPPORT_HPP
