/**
 * @file
 * Remote (TCP) fleet suite: the registration handshake and the
 * epoch/lease fencing contract, exercised against a real listening
 * control plane with scripted fake shards on loopback sockets.
 *
 * The fakes speak the wire protocol by hand (hello/welcome, pongs,
 * result frames) so every test controls exactly when a shard goes
 * silent, answers with a stale epoch, or reconnects — the failure
 * geometry the TcpShardTransport exists to contain:
 *
 *  - a hello carrying any prior epoch is rejected ("stale-epoch"):
 *    leases are never resumed;
 *  - a shard that misses its lease is fenced, and its in-flight run
 *    fails over exactly once (one failover, one fence — never a
 *    duplicate completion);
 *  - a frame stamped with a non-current epoch is dropped and counted,
 *    never matched to a waiter;
 *  - registration during drain is shed with a clean "draining" reject;
 *  - a quiet TCP fleet materializes every remote-fleet counter at
 *    zero, so "nothing happened" is assertable from metrics.
 *
 * Whole-process remote shards under network chaos are the chaos soak's
 * job (chaos_soak_test.cpp leg D/E).
 */
#include <gtest/gtest.h>

#include <stdlib.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/metrics.hpp"
#include "common/net.hpp"
#include "driver/envelope.hpp" // statusToJson
#include "service/fleet.hpp"
#include "service/service_protocol.hpp"
#include "service/tcp_transport.hpp"

namespace evrsim {
namespace {

using namespace std::chrono_literals;

/** A hand-driven remote shard: one connection, one MessageReader
 *  (carried across the handshake — it buffers pipelined frames). */
class FakeShard
{
  public:
    ~FakeShard() { close(); }

    Status
    dial(const std::string &addr, std::uint64_t prev_epoch,
         int version = kShardProtocolVersion)
    {
        close();
        Result<int> c = tcpConnect(addr, 2000);
        if (!c.ok())
            return c.status();
        fd_ = c.value();
        reader_ = std::make_unique<MessageReader>(fd_);
        Json hello = Json::object();
        hello.set("type", "hello");
        hello.set("version", version);
        hello.set("schema", kRemoteShardSchema);
        hello.set("capacity", 1);
        hello.set("prev_epoch", prev_epoch);
        return writeServiceMessage(fd_, std::move(hello));
    }

    Result<Json>
    next(int timeout_ms)
    {
        return reader_->next(timeout_ms);
    }

    void
    send(Json payload)
    {
        writeServiceMessage(fd_, std::move(payload));
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        reader_.reset();
    }

    std::uint64_t epoch = 0;

  private:
    int fd_ = -1;
    std::unique_ptr<MessageReader> reader_;
};

/** Dial + read the handshake verdict in one step. */
Result<Json>
dialFor(FakeShard &shard, const std::string &addr,
        std::uint64_t prev_epoch, int version = kShardProtocolVersion)
{
    if (Status s = shard.dial(addr, prev_epoch, version); !s.ok())
        return s;
    return shard.next(2000);
}

std::string
rejectReason(const Json &msg)
{
    EXPECT_EQ(msg.get("type", Json("")).asString(), "reject");
    return msg.get("reason", Json("")).asString();
}

double
counterOrNegative(const std::string &name)
{
    Result<double> v = metricsValue(name);
    return v.ok() ? v.value() : -1.0;
}

FleetConfig
remoteFleetConfig(int shards)
{
    FleetConfig cfg;
    cfg.shards = shards;
    cfg.listen = "127.0.0.1:0";
    cfg.lease_ms = 250;
    cfg.ping_interval_ms = 50;
    cfg.breaker_threshold = 3;
    cfg.run_deadline_ms = 10000;
    cfg.poll_ms = 10;
    return cfg;
}

TEST(RemoteFleet, HandshakeFencingAndQuietCounters)
{
    ::unsetenv("EVRSIM_CHAOS");
    metricsReset();

    FleetConfig cfg = remoteFleetConfig(1);
    cfg.shard_params_json = "{\"width\":64}";
    ShardFleet fleet(cfg, nullptr);
    ASSERT_TRUE(fleet.start().ok());
    std::string addr = fleet.listenAddress();
    ASSERT_FALSE(addr.empty());

    // Listening alone materializes every remote-fleet counter at
    // zero: a quiet fleet *asserts* quiet rather than being
    // indistinguishable from one that never exported the metric.
    for (const char *name :
         {"evrsim_fleet_fences_total", "evrsim_fleet_reconnects_total",
          "evrsim_fleet_partitions_total",
          "evrsim_fleet_stale_epochs_total",
          "evrsim_fleet_registrations_total",
          "evrsim_fleet_shed_registrations_total"})
        EXPECT_EQ(counterOrNegative(name), 0.0) << name;

    FakeShard shard;

    // A hello presenting any prior epoch is rejected: leases are
    // never resumed, whoever claims one must re-register fresh.
    Result<Json> verdict = dialFor(shard, addr, /*prev_epoch=*/7);
    ASSERT_TRUE(verdict.ok()) << verdict.status().toString();
    EXPECT_EQ(rejectReason(verdict.value()), "stale-epoch");

    // A protocol version mismatch is shed, not half-admitted.
    verdict = dialFor(shard, addr, 0, /*version=*/99);
    ASSERT_TRUE(verdict.ok()) << verdict.status().toString();
    EXPECT_EQ(rejectReason(verdict.value()), "bad-version");

    // A clean hello is welcomed into slot 0 under a fresh epoch, with
    // the lease and the params overlay riding along.
    verdict = dialFor(shard, addr, 0);
    ASSERT_TRUE(verdict.ok()) << verdict.status().toString();
    EXPECT_EQ(verdict.value().get("type", Json("")).asString(),
              "welcome");
    EXPECT_EQ(verdict.value().get("slot", Json(-1)).asU64(), 0u);
    EXPECT_GE(verdict.value().get("epoch", Json(0)).asU64(), 1u);
    EXPECT_EQ(verdict.value().get("lease_ms", Json(0)).asU64(), 250u);
    EXPECT_EQ(verdict.value().get("params", Json("")).asString(),
              cfg.shard_params_json);
    shard.close(); // slot frees once the plane's reader sees EOF

    // Registration during drain is shed with a clean reject.
    fleet.setRegistrationDraining(true);
    // The freed slot is only reusable after the reader noticed the
    // EOF; draining rejects happen before slot selection, so no wait
    // is needed for the verdict itself.
    verdict = dialFor(shard, addr, 0);
    ASSERT_TRUE(verdict.ok()) << verdict.status().toString();
    EXPECT_EQ(rejectReason(verdict.value()), "draining");
    shard.close();

    ShardFleet::Stats st = fleet.stats();
    EXPECT_EQ(st.registrations, 1u);
    EXPECT_EQ(st.reconnects, 0u);
    EXPECT_GE(st.stale_epochs, 1u);
    EXPECT_GE(st.shed_registrations, 2u); // bad-version + draining
    EXPECT_EQ(st.fences, 0u);

    fleet.stop();
}

TEST(RemoteFleet, LeaseFenceFailsOverExactlyOnceAndDropsStaleFrames)
{
    ::unsetenv("EVRSIM_CHAOS");
    metricsReset();

    std::atomic<int> degraded_calls{0};
    ShardFleet fleet(remoteFleetConfig(2),
                     [&](const std::string &,
                         const SimConfig &) -> Result<RunResult> {
                         ++degraded_calls;
                         return Status::internal(
                             "degraded fallback must not run");
                     });
    ASSERT_TRUE(fleet.start().ok());
    std::string addr = fleet.listenAddress();
    ASSERT_FALSE(addr.empty());

    // Register A first (slot 0), then B (slot 1).
    FakeShard a, b;
    Result<Json> wa = dialFor(a, addr, 0);
    ASSERT_TRUE(wa.ok()) << wa.status().toString();
    ASSERT_EQ(wa.value().get("type", Json("")).asString(), "welcome");
    ASSERT_EQ(wa.value().get("slot", Json(-1)).asU64(), 0u);
    a.epoch = wa.value().get("epoch", Json(0)).asU64();

    Result<Json> wb = dialFor(b, addr, 0);
    ASSERT_TRUE(wb.ok()) << wb.status().toString();
    ASSERT_EQ(wb.value().get("type", Json("")).asString(), "welcome");
    ASSERT_EQ(wb.value().get("slot", Json(-1)).asU64(), 1u);
    b.epoch = wb.value().get("epoch", Json(0)).asU64();

    std::atomic<bool> stop{false};

    // A pongs until the run lands, then goes silent holding it — a
    // partitioned shard with work in flight. The lease must fence it.
    std::thread a_thread([&] {
        bool got_run = false;
        while (!stop.load()) {
            Result<Json> msg = a.next(50);
            if (!msg.ok()) {
                if (msg.status().code() == ErrorCode::DeadlineExceeded)
                    continue;
                return; // fenced: the plane tore the connection down
            }
            std::string type =
                msg.value().get("type", Json("")).asString();
            if (type == "run") {
                got_run = true;
                continue;
            }
            if (type == "ping" && !got_run) {
                Json pong = Json::object();
                pong.set("type", "pong");
                pong.set("seq", msg.value().get("seq", Json(0)));
                pong.set("epoch", a.epoch);
                a.send(std::move(pong));
            }
        }
    });

    // B serves pings, and answers the failed-over run twice: first
    // stamped with a *wrong* epoch (must be dropped and counted,
    // never matched), then with its real one.
    std::thread b_thread([&] {
        while (!stop.load()) {
            Result<Json> msg = b.next(50);
            if (!msg.ok()) {
                if (msg.status().code() == ErrorCode::DeadlineExceeded)
                    continue;
                return;
            }
            std::string type =
                msg.value().get("type", Json("")).asString();
            if (type == "ping") {
                Json pong = Json::object();
                pong.set("type", "pong");
                pong.set("seq", msg.value().get("seq", Json(0)));
                pong.set("epoch", b.epoch);
                b.send(std::move(pong));
                continue;
            }
            if (type != "run")
                continue;
            Json stale = Json::object();
            stale.set("type", "result");
            stale.set("seq", msg.value().get("seq", Json(0)));
            stale.set("ok", false);
            stale.set("status", statusToJson(Status::internal(
                                    "stale-epoch frame leaked")));
            stale.set("epoch", b.epoch + 1000);
            b.send(std::move(stale));

            Json result = Json::object();
            result.set("type", "result");
            result.set("seq", msg.value().get("seq", Json(0)));
            result.set("ok", false);
            result.set("status", statusToJson(Status::internal(
                                     "verdict-from-shard-b")));
            result.set("epoch", b.epoch);
            b.send(std::move(result));
        }
    });

    // A key whose primary is slot 0, so the run lands on A first.
    std::string key;
    for (int i = 0; i < 64 && key.empty(); ++i) {
        std::string candidate = "wl-" + std::to_string(i) + "/baseline";
        if (shardIndexForKey(candidate, 2) == 0)
            key = candidate;
    }
    ASSERT_FALSE(key.empty());

    GpuConfig gpu;
    SimConfig config = configByName("baseline", gpu).value();
    WorkerAttempt attempt = fleet.execute("wl", config, key);

    // The run completed exactly once, on B, with B's verdict intact.
    EXPECT_FALSE(attempt.worker_died);
    ASSERT_FALSE(attempt.status.ok());
    EXPECT_NE(attempt.status.message().find("verdict-from-shard-b"),
              std::string::npos)
        << attempt.status.toString();
    EXPECT_EQ(degraded_calls.load(), 0);

    ShardFleet::Stats st = fleet.stats();
    EXPECT_EQ(st.dispatched, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failovers, 1u); // exactly once
    EXPECT_EQ(st.fences, 1u);    // A's lease miss, condemned once
    EXPECT_GE(st.stale_epochs, 1u); // B's doctored frame dropped
    EXPECT_EQ(st.registrations, 2u);

    stop.store(true);
    fleet.stop();
    a_thread.join();
    b_thread.join();
}

TEST(RemoteFleet, ReconnectAfterDisconnectCountsAndGetsFreshEpoch)
{
    ::unsetenv("EVRSIM_CHAOS");
    metricsReset();

    ShardFleet fleet(remoteFleetConfig(1), nullptr);
    ASSERT_TRUE(fleet.start().ok());
    std::string addr = fleet.listenAddress();

    FakeShard shard;
    Result<Json> first = dialFor(shard, addr, 0);
    ASSERT_TRUE(first.ok()) << first.status().toString();
    ASSERT_EQ(first.value().get("type", Json("")).asString(),
              "welcome");
    std::uint64_t epoch1 = first.value().get("epoch", Json(0)).asU64();
    shard.close();

    // The slot frees once the plane's reader observes the EOF; the
    // stale-epoch dance (reject, then fresh hello) mirrors what a
    // real remote shard does after any disconnect.
    std::uint64_t epoch2 = 0;
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
        Result<Json> r = dialFor(shard, addr, epoch1);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        ASSERT_EQ(rejectReason(r.value()), "stale-epoch");
        shard.close();

        r = dialFor(shard, addr, 0);
        ASSERT_TRUE(r.ok()) << r.status().toString();
        if (r.value().get("type", Json("")).asString() == "reject") {
            // "fleet-full": the previous tenant's EOF has not been
            // observed yet. Back off and retry.
            EXPECT_EQ(rejectReason(r.value()), "fleet-full");
            shard.close();
            std::this_thread::sleep_for(20ms);
            continue;
        }
        epoch2 = r.value().get("epoch", Json(0)).asU64();
        break;
    }
    ASSERT_GT(epoch2, epoch1) << "epochs must be monotone";
    shard.close();

    // The welcome frame is written before the plane bumps its
    // counters; give the admission thread a beat to publish them.
    auto stat_deadline = std::chrono::steady_clock::now() + 2s;
    while (fleet.stats().reconnects < 1 &&
           std::chrono::steady_clock::now() < stat_deadline)
        std::this_thread::sleep_for(5ms);

    ShardFleet::Stats st = fleet.stats();
    EXPECT_EQ(st.registrations, 2u);
    EXPECT_EQ(st.reconnects, 1u);
    EXPECT_GE(st.stale_epochs, 1u);

    fleet.stop();
}

} // namespace
} // namespace evrsim
