/**
 * @file
 * Unit and property tests for the rasterizer: coverage correctness
 * (area, fill rule, watertight shared edges), winding independence,
 * perspective-correct interpolation, quad accounting and the
 * triangle/rect overlap test used by the binner.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {
const RectI kScreen{0, 0, 64, 64};
}

TEST(Rasterizer, RightTriangleCoversExpectedPixels)
{
    // Axis-aligned right triangle over an 8x8 square: covers just under
    // half of the 64 pixels.
    auto frags = collectFragments(
        screenTriangle({0, 0}, {8, 0}, {0, 8}), kScreen);
    EXPECT_EQ(frags.size(), 28u); // 7+6+...+1 with the diagonal excluded
    for (const Fragment &f : frags) {
        EXPECT_LT(f.x + 0.5f + (f.y + 0.5f), 8.0f);
    }
}

TEST(Rasterizer, FullSquareFromTwoTrianglesCoversExactlyOnce)
{
    // The fill rule must make the shared diagonal watertight: every
    // pixel covered exactly once by the two triangles of a quad.
    ShadedPrimitive t1 = screenTriangle({0, 0}, {16, 0}, {16, 16});
    ShadedPrimitive t2 = screenTriangle({0, 0}, {16, 16}, {0, 16});

    std::set<std::pair<int, int>> seen;
    int duplicates = 0;
    for (const auto &prim : {t1, t2}) {
        for (const Fragment &f : collectFragments(prim, kScreen)) {
            if (!seen.insert({f.x, f.y}).second)
                ++duplicates;
        }
    }
    EXPECT_EQ(duplicates, 0);
    EXPECT_EQ(seen.size(), 256u);
}

TEST(Rasterizer, WindingDoesNotChangeCoverage)
{
    ShadedPrimitive ccw = screenTriangle({2, 2}, {20, 4}, {9, 18});
    ShadedPrimitive cw = screenTriangle({2, 2}, {9, 18}, {20, 4});
    auto a = collectFragments(ccw, kScreen);
    auto b = collectFragments(cw, kScreen);
    ASSERT_EQ(a.size(), b.size());
    auto key = [](const Fragment &f) { return f.y * 1000 + f.x; };
    std::sort(a.begin(), a.end(),
              [&](auto &l, auto &r) { return key(l) < key(r); });
    std::sort(b.begin(), b.end(),
              [&](auto &l, auto &r) { return key(l) < key(r); });
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].x, b[i].x);
        EXPECT_EQ(a[i].y, b[i].y);
        EXPECT_FLOAT_EQ(a[i].depth, b[i].depth);
    }
}

TEST(Rasterizer, DegenerateTriangleProducesNothing)
{
    auto frags = collectFragments(
        screenTriangle({3, 3}, {10, 10}, {17, 17}), kScreen);
    EXPECT_TRUE(frags.empty());
}

TEST(Rasterizer, BoundsClipCoverage)
{
    ShadedPrimitive big = screenTriangle({-100, -100}, {200, -100}, {50, 200});
    RectI tile{16, 16, 32, 32};
    auto frags = collectFragments(big, tile);
    EXPECT_EQ(frags.size(), 256u); // tile fully inside the triangle
    for (const Fragment &f : frags)
        EXPECT_TRUE(tile.contains(f.x, f.y));
}

TEST(Rasterizer, FragmentsSampleAtPixelCenters)
{
    // A triangle whose left edge is at x = 0.25: pixel (0,0)'s center
    // (0.5, 0.5) is inside.
    auto frags = collectFragments(
        screenTriangle({0.25f, 0}, {8, 0}, {0.25f, 8}), kScreen);
    bool has00 = false;
    for (const Fragment &f : frags)
        has00 |= (f.x == 0 && f.y == 0);
    EXPECT_TRUE(has00);
}

TEST(Rasterizer, DepthInterpolatesLinearly)
{
    ShadedPrimitive prim = screenTriangle({0, 0}, {16, 0}, {0, 16});
    prim.v[0].depth = 0.0f;
    prim.v[1].depth = 1.0f;
    prim.v[2].depth = 1.0f;
    prim.updateZNear();
    for (const Fragment &f : collectFragments(prim, kScreen)) {
        float expected = (f.x + 0.5f) / 16.0f + (f.y + 0.5f) / 16.0f;
        EXPECT_NEAR(f.depth, expected, 1e-4f);
    }
}

TEST(Rasterizer, AffineColorInterpolationWhenWIsUniform)
{
    ShadedPrimitive prim = screenTriangle({0, 0}, {16, 0}, {0, 16});
    prim.v[0].color = {1, 0, 0, 1};
    prim.v[1].color = {0, 1, 0, 1};
    prim.v[2].color = {0, 0, 1, 1};
    for (const Fragment &f : collectFragments(prim, kScreen)) {
        // Barycentric coordinates sum to one -> so do the channels.
        EXPECT_NEAR(f.color.x + f.color.y + f.color.z, 1.0f, 1e-4f);
    }
}

TEST(Rasterizer, PerspectiveCorrectUvInterpolation)
{
    // v0 is twice as close as v1/v2 (inv_w twice as large). Along edge
    // v0-v1, perspective-correct u is biased towards the closer vertex.
    ShadedPrimitive prim = screenTriangle({0, 0}, {32, 0}, {0, 32});
    prim.v[0].inv_w = 2.0f;
    prim.v[1].inv_w = 1.0f;
    prim.v[2].inv_w = 1.0f;
    prim.v[0].uv = {0, 0};
    prim.v[1].uv = {1, 0};
    prim.v[2].uv = {0, 1};

    Fragment mid{};
    bool found = false;
    for (const Fragment &f : collectFragments(prim, kScreen)) {
        if (f.x == 15 && f.y == 0) {
            mid = f;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    // At the screen midpoint, u = (0.5*1)/(0.5*2 + 0.5*1) = 1/3 against
    // an affine value of ~0.5.
    EXPECT_NEAR(mid.uv.x, 0.33f, 0.04f);
    EXPECT_LT(mid.uv.x, 0.40f);
}

TEST(Rasterizer, QuadCountCoversFragments)
{
    FrameStats stats;
    ShadedPrimitive prim = screenTriangle({0, 0}, {16, 0}, {0, 16});
    Rasterizer::rasterize(prim, kScreen, stats, [](const Fragment &) {});
    // 2x2 quads: at least frags/4, at most one quad per fragment.
    EXPECT_GE(stats.raster_quads * 4, stats.fragments_generated);
    EXPECT_LE(stats.raster_quads, stats.fragments_generated);
    EXPECT_GT(stats.raster_quads, 0u);
}

// ----- Property: coverage area approximates triangle area ---------------

class RasterAreaProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RasterAreaProperty, CoverageMatchesGeometricArea)
{
    Rng rng(GetParam() * 31337 + 7);
    Vec2 a{rng.nextFloat(0, 64), rng.nextFloat(0, 64)};
    Vec2 b{rng.nextFloat(0, 64), rng.nextFloat(0, 64)};
    Vec2 c{rng.nextFloat(0, 64), rng.nextFloat(0, 64)};
    float area = std::fabs(Rasterizer::signedArea2(a, b, c)) * 0.5f;
    if (area < 32.0f)
        return; // tiny slivers have large relative quantization error

    auto frags = collectFragments(screenTriangle(a, b, c), kScreen);
    // Pixel-count area differs from geometric area by at most roughly
    // the perimeter in pixels.
    auto edge_len = [](const Vec2 &p, const Vec2 &q) {
        return std::sqrt((q.x - p.x) * (q.x - p.x) +
                         (q.y - p.y) * (q.y - p.y));
    };
    float per = edge_len(a, b) + edge_len(b, c) + edge_len(c, a);
    EXPECT_NEAR(static_cast<float>(frags.size()), area, per + 4.0f);
}

INSTANTIATE_TEST_SUITE_P(RandomTriangles, RasterAreaProperty,
                         ::testing::Range(0, 32));

// ----- Property: tiled rasterization equals whole-screen ----------------

class RasterTilingProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RasterTilingProperty, TileDecompositionIsExact)
{
    Rng rng(GetParam() * 9176 + 3);
    ShadedPrimitive prim = screenTriangle(
        {rng.nextFloat(-10, 74), rng.nextFloat(-10, 74)},
        {rng.nextFloat(-10, 74), rng.nextFloat(-10, 74)},
        {rng.nextFloat(-10, 74), rng.nextFloat(-10, 74)});

    auto whole = collectFragments(prim, kScreen);
    std::set<std::pair<int, int>> whole_set;
    for (const Fragment &f : whole)
        whole_set.insert({f.x, f.y});

    std::set<std::pair<int, int>> tiled_set;
    for (int ty = 0; ty < 64; ty += 16) {
        for (int tx = 0; tx < 64; tx += 16) {
            RectI tile{tx, ty, tx + 16, ty + 16};
            for (const Fragment &f : collectFragments(prim, tile)) {
                bool fresh = tiled_set.insert({f.x, f.y}).second;
                EXPECT_TRUE(fresh) << "pixel rasterized in two tiles";
            }
        }
    }
    EXPECT_EQ(whole_set, tiled_set);
}

INSTANTIATE_TEST_SUITE_P(RandomTriangles, RasterTilingProperty,
                         ::testing::Range(0, 32));

// ----- Overlap test ------------------------------------------------------

TEST(TriangleRectOverlap, DisjointBBoxRejected)
{
    ShadedPrimitive prim = screenTriangle({0, 0}, {8, 0}, {0, 8});
    EXPECT_FALSE(Rasterizer::triangleOverlapsRect(prim, {16, 16, 32, 32}));
}

TEST(TriangleRectOverlap, BBoxOverlapButEdgeSeparated)
{
    // Triangle hugging the top-left corner; rect in the bottom-right of
    // the shared bbox, separated by the hypotenuse.
    ShadedPrimitive prim = screenTriangle({0, 0}, {32, 0}, {0, 32});
    EXPECT_FALSE(Rasterizer::triangleOverlapsRect(prim, {24, 24, 32, 32}));
    EXPECT_TRUE(Rasterizer::triangleOverlapsRect(prim, {0, 0, 8, 8}));
}

TEST(TriangleRectOverlap, RectInsideTriangle)
{
    ShadedPrimitive prim = screenTriangle({-10, -10}, {100, -10}, {-10, 100});
    EXPECT_TRUE(Rasterizer::triangleOverlapsRect(prim, {0, 0, 16, 16}));
}

TEST(TriangleRectOverlap, TriangleInsideRect)
{
    ShadedPrimitive prim = screenTriangle({4, 4}, {8, 4}, {4, 8});
    EXPECT_TRUE(Rasterizer::triangleOverlapsRect(prim, {0, 0, 16, 16}));
}

TEST(TriangleRectOverlap, WindingIndependent)
{
    ShadedPrimitive cw = screenTriangle({0, 0}, {0, 32}, {32, 0});
    EXPECT_FALSE(Rasterizer::triangleOverlapsRect(cw, {24, 24, 32, 32}));
    EXPECT_TRUE(Rasterizer::triangleOverlapsRect(cw, {0, 0, 8, 8}));
}

/** Property: the overlap test never misses a tile with real coverage. */
class OverlapConservativeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OverlapConservativeProperty, EveryCoveredTileReportsOverlap)
{
    Rng rng(GetParam() * 40961 + 11);
    ShadedPrimitive prim = screenTriangle(
        {rng.nextFloat(0, 64), rng.nextFloat(0, 64)},
        {rng.nextFloat(0, 64), rng.nextFloat(0, 64)},
        {rng.nextFloat(0, 64), rng.nextFloat(0, 64)});

    for (int ty = 0; ty < 64; ty += 16) {
        for (int tx = 0; tx < 64; tx += 16) {
            RectI tile{tx, ty, tx + 16, ty + 16};
            auto frags = collectFragments(prim, tile);
            if (!frags.empty()) {
                EXPECT_TRUE(Rasterizer::triangleOverlapsRect(prim, tile))
                    << "tile with fragments not binned";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomTriangles, OverlapConservativeProperty,
                         ::testing::Range(0, 48));
