/**
 * @file
 * Unit tests for the scene substrate: mesh builders, procedural
 * textures, cameras, animation helpers and scene submission.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "scene/animation.hpp"
#include "scene/camera.hpp"
#include "scene/mesh.hpp"
#include "scene/scene.hpp"
#include "scene/texture.hpp"

using namespace evrsim;

// --------------------------------------------------------------- Mesh --

TEST(Mesh, QuadHasTwoTriangles)
{
    Mesh q = meshes::quad({1, 0, 0, 1});
    EXPECT_EQ(q.vertices.size(), 4u);
    EXPECT_EQ(q.triangleCount(), 2u);
    for (const Vertex &v : q.vertices)
        EXPECT_EQ(v.color, (Vec4{1, 0, 0, 1}));
}

TEST(Mesh, QuadCornersAssignsDistinctColors)
{
    Mesh q = meshes::quadCorners({1, 0, 0, 1}, {0, 1, 0, 1}, {0, 0, 1, 1},
                                 {1, 1, 0, 1});
    EXPECT_EQ(q.vertices[0].color, (Vec4{1, 0, 0, 1}));
    EXPECT_EQ(q.vertices[2].color, (Vec4{0, 0, 1, 1}));
}

TEST(Mesh, GridDimensions)
{
    Mesh g = meshes::grid(4, 3, {1, 1, 1, 1}, 0.0f, 1);
    EXPECT_EQ(g.vertices.size(), 5u * 4u);
    EXPECT_EQ(g.triangleCount(), 4u * 3u * 2u);
}

TEST(Mesh, GridJitterIsDeterministic)
{
    Mesh a = meshes::grid(8, 8, {1, 1, 1, 1}, 0.1f, 77);
    Mesh b = meshes::grid(8, 8, {1, 1, 1, 1}, 0.1f, 77);
    ASSERT_EQ(a.vertices.size(), b.vertices.size());
    for (std::size_t i = 0; i < a.vertices.size(); ++i)
        EXPECT_EQ(a.vertices[i], b.vertices[i]);
}

TEST(Mesh, GridJitterBounded)
{
    Mesh g = meshes::grid(6, 6, {1, 1, 1, 1}, 0.25f, 3);
    for (const Vertex &v : g.vertices)
        EXPECT_LE(std::fabs(v.position.z), 0.25f);
}

TEST(Mesh, BoxHasSixFaces)
{
    Mesh b = meshes::box({1, 1, 1, 1});
    EXPECT_EQ(b.vertices.size(), 24u);
    EXPECT_EQ(b.triangleCount(), 12u);
    // All vertices on the unit cube surface.
    for (const Vertex &v : b.vertices) {
        float m = std::max({std::fabs(v.position.x), std::fabs(v.position.y),
                            std::fabs(v.position.z)});
        EXPECT_NEAR(m, 0.5f, 1e-6f);
    }
}

TEST(Mesh, SphereVerticesOnRadius)
{
    Mesh s = meshes::sphere(8, 12, {1, 1, 1, 1});
    for (const Vertex &v : s.vertices)
        EXPECT_NEAR(v.position.length(), 0.5f, 1e-5f);
    EXPECT_EQ(s.triangleCount(), 8u * 12u * 2u);
}

TEST(Mesh, AppendRebasesIndices)
{
    Mesh a = meshes::quad({1, 1, 1, 1});
    Mesh b = meshes::quad({0, 0, 0, 1});
    a.append(b);
    EXPECT_EQ(a.vertices.size(), 8u);
    EXPECT_EQ(a.triangleCount(), 4u);
    // Second quad's indices refer to its own vertices.
    for (std::size_t i = 6; i < 12; ++i)
        EXPECT_GE(a.indices[i], 4u);
}

TEST(Mesh, CharacterIsDeterministicPerSeed)
{
    Mesh a = meshes::character(5, {1, 0, 0, 1});
    Mesh b = meshes::character(5, {1, 0, 0, 1});
    Mesh c = meshes::character(6, {1, 0, 0, 1});
    EXPECT_EQ(a.vertices.size(), b.vertices.size());
    EXPECT_EQ(a.vertices[0], b.vertices[0]);
    // Different seeds should produce different proportions.
    bool differs = a.vertices.size() != c.vertices.size();
    for (std::size_t i = 0; !differs && i < a.vertices.size(); ++i)
        differs = !(a.vertices[i] == c.vertices[i]);
    EXPECT_TRUE(differs);
}

TEST(Mesh, VertexAddressing)
{
    Mesh q = meshes::quad({1, 1, 1, 1});
    q.buffer_base = 0x1000;
    EXPECT_EQ(q.vertexAddr(0), 0x1000u);
    EXPECT_EQ(q.vertexAddr(2), 0x1000u + 2 * kVertexBytes);
}

// ------------------------------------------------------------ Texture --

TEST(Texture, SolidIgnoresCoordinates)
{
    Texture t(TextureKind::Solid, 64, {0.5f, 0.25f, 0.75f, 1.0f},
              {0, 0, 0, 0});
    EXPECT_EQ(t.sample(0.1f, 0.9f), t.sample(0.7f, 0.2f));
}

TEST(Texture, CheckerAlternates)
{
    Texture t(TextureKind::Checker, 64, {1, 1, 1, 1}, {0, 0, 0, 1}, 0, 2);
    // Cells are 32 texels: (0,0) and (32/64, 0) differ.
    EXPECT_NE(t.sample(0.1f, 0.1f), t.sample(0.6f, 0.1f));
    EXPECT_EQ(t.sample(0.1f, 0.1f), t.sample(0.6f, 0.6f));
}

TEST(Texture, UvWraps)
{
    Texture t(TextureKind::Noise, 64, {0, 0, 0, 1}, {1, 1, 1, 1}, 9, 8);
    EXPECT_EQ(t.sample(0.3f, 0.4f), t.sample(1.3f, 0.4f));
    EXPECT_EQ(t.sample(0.3f, 0.4f), t.sample(0.3f, -0.6f));
}

TEST(Texture, NoiseIsDeterministicPerSeed)
{
    Texture a(TextureKind::Noise, 64, {0, 0, 0, 1}, {1, 1, 1, 1}, 11, 8);
    Texture b(TextureKind::Noise, 64, {0, 0, 0, 1}, {1, 1, 1, 1}, 11, 8);
    Texture c(TextureKind::Noise, 64, {0, 0, 0, 1}, {1, 1, 1, 1}, 12, 8);
    EXPECT_EQ(a.sample(0.5f, 0.5f), b.sample(0.5f, 0.5f));
    bool differs = false;
    for (int i = 0; i < 8 && !differs; ++i)
        differs = !(a.sample(i / 8.0f, 0.0f) == c.sample(i / 8.0f, 0.0f));
    EXPECT_TRUE(differs);
}

TEST(Texture, TexelAddressesFollowRowMajorLayout)
{
    Texture t(TextureKind::Solid, 64, {1, 1, 1, 1}, {0, 0, 0, 0});
    t.setBase(0x10000);
    Addr a00 = t.texelAddr(0.0f, 0.0f);
    // One texel to the right: +4 bytes.
    Addr a10 = t.texelAddr(1.5f / 64.0f, 0.0f);
    // One row down: +64*4 bytes.
    Addr a01 = t.texelAddr(0.0f, 1.5f / 64.0f);
    EXPECT_EQ(a00, 0x10000u);
    EXPECT_EQ(a10 - a00, 4u);
    EXPECT_EQ(a01 - a00, 64u * 4);
}

TEST(Texture, ContentKeyDistinguishesParameters)
{
    Texture a(TextureKind::Checker, 64, {1, 0, 0, 1}, {0, 0, 0, 1}, 0, 4);
    Texture b(TextureKind::Checker, 64, {0, 1, 0, 1}, {0, 0, 0, 1}, 0, 4);
    Texture c(TextureKind::Stripes, 64, {1, 0, 0, 1}, {0, 0, 0, 1}, 0, 4);
    EXPECT_NE(a.contentKey(), b.contentKey());
    EXPECT_NE(a.contentKey(), c.contentKey());
}

TEST(Texture, ByteSizeIsRgba8)
{
    Texture t(TextureKind::Solid, 128, {1, 1, 1, 1}, {0, 0, 0, 0});
    EXPECT_EQ(t.byteSize(), 128u * 128u * 4u);
}

// ------------------------------------------------------------- Camera --

TEST(Camera, Camera2DMapsPixelsToNdc)
{
    Scene s;
    setCamera2D(s, 200, 100);
    Mat4 vp = s.viewProj();
    // Top-left pixel corner -> (-1, +1).
    Vec4 tl = vp.transformPoint({0, 0, 0.5f});
    EXPECT_NEAR(tl.x / tl.w, -1.0f, 1e-5f);
    EXPECT_NEAR(tl.y / tl.w, 1.0f, 1e-5f);
    // Bottom-right corner -> (+1, -1).
    Vec4 br = vp.transformPoint({200, 100, 0.5f});
    EXPECT_NEAR(br.x / br.w, 1.0f, 1e-5f);
    EXPECT_NEAR(br.y / br.w, -1.0f, 1e-5f);
}

TEST(Camera, Camera2DDepthPassesThrough)
{
    Scene s;
    setCamera2D(s, 200, 100);
    Mat4 vp = s.viewProj();
    // App z = 0.25 should land at NDC z = -0.5, i.e. depth 0.25.
    Vec4 p = vp.transformPoint({10, 10, 0.25f});
    float depth = (p.z / p.w + 1.0f) * 0.5f;
    EXPECT_NEAR(depth, 0.25f, 1e-5f);
}

TEST(Camera, Camera3DCentersTarget)
{
    Scene s;
    setCamera3D(s, {0, 5, 10}, {0, 0, 0}, 60.0f, 1.5f);
    Vec4 c = s.viewProj().transformPoint({0, 0, 0});
    EXPECT_NEAR(c.x / c.w, 0.0f, 1e-5f);
    EXPECT_NEAR(c.y / c.w, 0.0f, 1e-5f);
}

// ---------------------------------------------------------- Animation --

TEST(Animation, OscillatePeriodicity)
{
    float a = anim::oscillate(10.0f, 2.0f, 30.0f, 7);
    float b = anim::oscillate(10.0f, 2.0f, 30.0f, 37);
    EXPECT_NEAR(a, b, 1e-4f);
}

TEST(Animation, OscillateBounds)
{
    for (int f = 0; f < 100; ++f) {
        float v = anim::oscillate(0.0f, 3.0f, 17.0f, f);
        EXPECT_LE(std::fabs(v), 3.0f + 1e-5f);
    }
}

TEST(Animation, SawtoothWrapsAndInterpolates)
{
    EXPECT_FLOAT_EQ(anim::sawtooth(0.0f, 10.0f, 10.0f, 0), 0.0f);
    EXPECT_FLOAT_EQ(anim::sawtooth(0.0f, 10.0f, 10.0f, 5), 5.0f);
    EXPECT_FLOAT_EQ(anim::sawtooth(0.0f, 10.0f, 10.0f, 10), 0.0f);
}

TEST(Animation, PingPongReflects)
{
    EXPECT_FLOAT_EQ(anim::pingPong(0.0f, 10.0f, 10.0f, 5), 5.0f);
    EXPECT_FLOAT_EQ(anim::pingPong(0.0f, 10.0f, 10.0f, 10), 10.0f);
    EXPECT_FLOAT_EQ(anim::pingPong(0.0f, 10.0f, 10.0f, 15), 5.0f);
    EXPECT_FLOAT_EQ(anim::pingPong(0.0f, 10.0f, 10.0f, 20), 0.0f);
}

TEST(Animation, OrbitStaysOnCircle)
{
    for (int f = 0; f < 50; ++f) {
        Vec3 p = anim::orbitXZ({1, 2, 3}, 5.0f, 60.0f, f);
        float r = std::sqrt((p.x - 1) * (p.x - 1) + (p.z - 3) * (p.z - 3));
        EXPECT_NEAR(r, 5.0f, 1e-4f);
        EXPECT_FLOAT_EQ(p.y, 2.0f);
    }
}

TEST(Animation, SpriteAtPlacesCenterAndScale)
{
    Mat4 m = anim::spriteAt(100, 50, 20, 10, 0.3f);
    // Quad center (origin) lands at the sprite position.
    EXPECT_EQ(m.transformPoint({0, 0, 0}).xyz(), (Vec3{100, 50, 0.3f}));
    // Corner (+0.5, +0.5) lands half a sprite away.
    EXPECT_EQ(m.transformPoint({0.5f, 0.5f, 0}).xyz(),
              (Vec3{110, 55, 0.3f}));
}

// -------------------------------------------------------------- Scene --

TEST(Scene, SubmitAssignsSequentialCommandIds)
{
    Mesh q = meshes::quad({1, 1, 1, 1});
    Scene s;
    RenderState rs;
    s.submit(&q, Mat4::identity(), rs);
    s.submit(&q, Mat4::identity(), rs);
    s.submit(&q, Mat4::identity(), rs);
    ASSERT_EQ(s.commands.size(), 3u);
    EXPECT_EQ(s.commands[0].id, 0u);
    EXPECT_EQ(s.commands[1].id, 1u);
    EXPECT_EQ(s.commands[2].id, 2u);
}

TEST(Scene, RenderStateClassification)
{
    RenderState woz;
    woz.depth_write = true;
    EXPECT_TRUE(woz.isWoz());

    RenderState nwoz;
    nwoz.depth_write = false;
    EXPECT_FALSE(nwoz.isWoz());

    RenderState discard;
    discard.program = FragmentProgram::TexturedDiscard;
    EXPECT_TRUE(discard.shaderDiscards());
    EXPECT_FALSE(woz.shaderDiscards());
}
