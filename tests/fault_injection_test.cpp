/**
 * @file
 * Tests for the fault-tolerance layer: Status/Result propagation, strict
 * env-knob validation, the deterministic FaultInjector, JobPool
 * exception capture, corrupt-cache quarantine + re-simulation, bounded
 * retry with backoff, the cooperative job watchdog, and — the
 * load-bearing guarantee — that every run surviving an injected-fault
 * sweep is byte-identical to a clean run.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "common/env.hpp"
#include "common/fault_injector.hpp"
#include "common/status.hpp"
#include "driver/experiment.hpp"
#include "common/job_pool.hpp"
#include "driver/json.hpp"
#include "scene/mesh.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

// --------------------------------------------------------------- Status --

TEST(Status, DefaultIsOkAndFactoriesCarryCodes)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_FALSE(ok.isTransient());

    Status s = Status::dataLoss("entry damaged");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::DataLoss);
    EXPECT_EQ(s.message(), "entry damaged");
    EXPECT_EQ(s.toString(), "DATA_LOSS: entry damaged");

    EXPECT_EQ(Status::invalidArgument("x").code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(Status::notFound("x").code(), ErrorCode::NotFound);
    EXPECT_EQ(Status::deadlineExceeded("x").code(),
              ErrorCode::DeadlineExceeded);
    EXPECT_EQ(Status::internal("x").code(), ErrorCode::Internal);
}

TEST(Status, OnlyUnavailableIsTransient)
{
    EXPECT_TRUE(Status::unavailable("io hiccup").isTransient());
    EXPECT_FALSE(Status::dataLoss("x").isTransient());
    EXPECT_FALSE(Status::deadlineExceeded("x").isTransient());
    EXPECT_FALSE(Status::internal("x").isTransient());
}

TEST(Status, WithContextPrefixesMessage)
{
    Status s = Status::dataLoss("not a number").withContext("schema");
    EXPECT_EQ(s.code(), ErrorCode::DataLoss);
    EXPECT_EQ(s.message(), "schema: not a number");
}

TEST(Status, ResultHoldsValueOrError)
{
    Result<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);

    Result<int> bad(Status::notFound("missing"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::NotFound);
}

// ------------------------------------------------------------ env knobs --

TEST(EnvKnobs, StrictIntParsing)
{
    EXPECT_TRUE(parseIntStrict("42").ok());
    EXPECT_EQ(parseIntStrict("42").value(), 42);
    EXPECT_TRUE(parseIntStrict("-3").ok());
    EXPECT_FALSE(parseIntStrict("").ok());
    EXPECT_FALSE(parseIntStrict("3O").ok()); // the atoi() trap: "3O" -> 3
    EXPECT_FALSE(parseIntStrict(" 42").ok());
    EXPECT_FALSE(parseIntStrict("42 ").ok());
    EXPECT_FALSE(parseIntStrict("99999999999999999999999").ok());
    EXPECT_TRUE(parseDoubleStrict("0.25").ok());
    EXPECT_FALSE(parseDoubleStrict("0.25x").ok());
}

TEST(EnvKnobs, GarbageFramesIsFatalAndNamesTheVariable)
{
    setenv("EVRSIM_FRAMES", "3O", 1);
    EXPECT_EXIT(benchParamsFromEnv(), ::testing::ExitedWithCode(1),
                "EVRSIM_FRAMES");
    unsetenv("EVRSIM_FRAMES");
}

TEST(EnvKnobs, NegativeTimeoutIsFatalAndNamesTheVariable)
{
    setenv("EVRSIM_JOB_TIMEOUT_MS", "-5", 1);
    EXPECT_EXIT(benchParamsFromEnv(), ::testing::ExitedWithCode(1),
                "EVRSIM_JOB_TIMEOUT_MS");
    unsetenv("EVRSIM_JOB_TIMEOUT_MS");
}

TEST(EnvKnobs, TimeoutKnobIsParsed)
{
    unsetenv("EVRSIM_JOB_TIMEOUT_MS");
    EXPECT_EQ(benchParamsFromEnv().job_timeout_ms, 0);
    setenv("EVRSIM_JOB_TIMEOUT_MS", "1234", 1);
    EXPECT_EQ(benchParamsFromEnv().job_timeout_ms, 1234);
    unsetenv("EVRSIM_JOB_TIMEOUT_MS");
}

TEST(EnvKnobs, CheckedVariantPropagatesInsteadOfExiting)
{
    setenv("EVRSIM_JOBS", "abc", 1);
    Result<BenchParams> p = benchParamsFromEnvChecked();
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(p.status().message().find("EVRSIM_JOBS"), std::string::npos);
    unsetenv("EVRSIM_JOBS");
}

// -------------------------------------------------------- FaultInjector --

TEST(FaultInjector, ParsesSpecTriples)
{
    Result<FaultPlan> plan =
        FaultInjector::parsePlan("cache-read:1:42,job-execute:0.25:7");
    ASSERT_TRUE(plan.ok());
    const FaultSpec &rd =
        plan.value()[static_cast<int>(FaultSite::CacheRead)];
    EXPECT_TRUE(rd.enabled);
    EXPECT_DOUBLE_EQ(rd.rate, 1.0);
    EXPECT_EQ(rd.seed, 42u);
    const FaultSpec &wr =
        plan.value()[static_cast<int>(FaultSite::CacheWrite)];
    EXPECT_FALSE(wr.enabled);
    const FaultSpec &ex =
        plan.value()[static_cast<int>(FaultSite::JobExecute)];
    EXPECT_TRUE(ex.enabled);
    EXPECT_DOUBLE_EQ(ex.rate, 0.25);
}

TEST(FaultInjector, RejectsMalformedSpecs)
{
    EXPECT_FALSE(FaultInjector::parsePlan("bogus-site:1:1").ok());
    EXPECT_FALSE(FaultInjector::parsePlan("cache-read:1").ok());
    EXPECT_FALSE(FaultInjector::parsePlan("cache-read:2:1").ok());
    EXPECT_FALSE(FaultInjector::parsePlan("cache-read:1:-1").ok());
    EXPECT_FALSE(FaultInjector::parsePlan("cache-read:x:1").ok());
}

TEST(FaultInjector, DrawsAreDeterministicInSeedAndCounter)
{
    Result<FaultPlan> plan = FaultInjector::parsePlan("job-execute:0.5:9");
    ASSERT_TRUE(plan.ok());
    FaultInjector a(plan.value());
    FaultInjector b(plan.value());
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.shouldFail(FaultSite::JobExecute),
                  b.shouldFail(FaultSite::JobExecute))
            << "draw " << i << " diverged for identical plans";
    EXPECT_EQ(a.draws(FaultSite::JobExecute), 200u);
    EXPECT_EQ(a.injected(FaultSite::JobExecute),
              b.injected(FaultSite::JobExecute));
}

TEST(FaultInjector, RateZeroNeverFiresRateOneAlwaysFires)
{
    FaultPlan plan;
    plan[static_cast<int>(FaultSite::CacheRead)] = {true, 0.0, 1};
    plan[static_cast<int>(FaultSite::CacheWrite)] = {true, 1.0, 1};
    FaultInjector inj(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.shouldFail(FaultSite::CacheRead));
        EXPECT_TRUE(inj.shouldFail(FaultSite::CacheWrite));
        EXPECT_FALSE(inj.shouldFail(FaultSite::JobExecute)); // disabled
    }
    EXPECT_EQ(inj.injected(FaultSite::CacheRead), 0u);
    EXPECT_EQ(inj.injected(FaultSite::CacheWrite), 100u);
    // A disabled site is a single branch: no draw is even recorded.
    EXPECT_EQ(inj.draws(FaultSite::JobExecute), 0u);
    EXPECT_EQ(inj.injected(FaultSite::JobExecute), 0u);
}

TEST(FaultInjector, MalformedEnvIsFatal)
{
    setenv("EVRSIM_FAULT", "cache-read", 1);
    EXPECT_EXIT(FaultInjector::planFromEnv(),
                ::testing::ExitedWithCode(1), "EVRSIM_FAULT");
    unsetenv("EVRSIM_FAULT");
}

// -------------------------------------------- JobPool fault isolation --

TEST(JobPool, ThrowingJobCostsOnlyItself)
{
    JobPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&, i] {
            if (i == 3)
                throw std::runtime_error("boom 3");
            if (i == 7)
                throw 42; // non-std exception
            ran.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(pool.failureCount(), 2u);

    std::vector<std::string> failures = pool.drainFailures();
    ASSERT_EQ(failures.size(), 2u);
    bool saw_boom = false, saw_nonstd = false;
    for (const std::string &f : failures) {
        saw_boom |= f == "boom 3";
        saw_nonstd |= f == "non-std exception escaped a job";
    }
    EXPECT_TRUE(saw_boom);
    EXPECT_TRUE(saw_nonstd);
    EXPECT_TRUE(pool.drainFailures().empty()); // drain resets

    // The pool is still usable after failures.
    pool.submit([&] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 9);
}

TEST(JobPool, InlinePoolCapturesThrowsToo)
{
    JobPool pool(1);
    pool.submit([] { throw std::runtime_error("inline boom"); });
    pool.wait();
    std::vector<std::string> failures = pool.drainFailures();
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_EQ(failures[0], "inline boom");
}

// ---------------------------------------------------- Json try-accessors --

TEST(JsonTry, AccessorsPropagateInsteadOfPanicking)
{
    Result<Json> doc =
        Json::tryParse("{\"n\": 3, \"s\": \"hi\", \"b\": true}");
    ASSERT_TRUE(doc.ok());
    const Json &j = doc.value();

    ASSERT_NE(j.find("n"), nullptr);
    EXPECT_EQ(j.find("n")->tryAsU64().value(), 3u);
    EXPECT_EQ(j.find("s")->tryAsString().value(), "hi");
    EXPECT_TRUE(j.find("b")->tryAsBool().value());

    Result<std::uint64_t> wrong = j.find("s")->tryAsU64();
    ASSERT_FALSE(wrong.ok());
    EXPECT_EQ(wrong.status().code(), ErrorCode::DataLoss);
    EXPECT_EQ(j.find("missing"), nullptr);

    Result<Json> bad = Json::tryParse("{\"n\": ");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::DataLoss);
}

TEST(JsonTry, RunResultTryFromJsonRejectsDamagedShapes)
{
    EXPECT_FALSE(RunResult::tryFromJson(Json::parseOrDie("{}")).ok());
    EXPECT_FALSE(RunResult::tryFromJson(Json(3)).ok());
}

// ------------------------------------------------------- test workloads --

namespace {

/** A tiny deterministic workload; `alias` selects its look. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::string alias, int width, int height)
        : alias_(std::move(alias)), width_(width), height_(height)
    {
        quad_ = meshes::quad({1, 1, 1, 1});
    }

    Info
    info() const override
    {
        return {alias_, "Tiny " + alias_, "Test", false};
    }

    void setup(GpuSimulator &sim) override { sim.uploadMesh(quad_); }

    Scene
    frame(int index) override
    {
        float offset = alias_ == "fz-a" ? 2.0f : 10.0f;
        Scene s;
        setCamera2D(s, width_, height_);
        DrawCommand &c = submitRect(s, &quad_, offset, offset, 20, 16,
                                    0.5f, RenderState{});
        c.tint = {0.4f + 0.1f * (index % 4), 0.3f, 0.2f, 1.0f};
        return s;
    }

  private:
    std::string alias_;
    int width_, height_;
    Mesh quad_;
};

/** TinyWorkload whose setup() throws TransientError while budget > 0. */
class FlakyWorkload : public TinyWorkload
{
  public:
    FlakyWorkload(std::string alias, int w, int h,
                  std::atomic<int> *failures_left)
        : TinyWorkload(std::move(alias), w, h),
          failures_left_(failures_left)
    {
    }

    void
    setup(GpuSimulator &sim) override
    {
        if (failures_left_->fetch_sub(1) > 0)
            throw TransientError("simulated I/O hiccup");
        TinyWorkload::setup(sim);
    }

  private:
    std::atomic<int> *failures_left_;
};

/** TinyWorkload whose frames take >= @p ms wall-clock each. */
class SlowWorkload : public TinyWorkload
{
  public:
    SlowWorkload(std::string alias, int w, int h, int ms)
        : TinyWorkload(std::move(alias), w, h), ms_(ms)
    {
    }

    Scene
    frame(int index) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
        return TinyWorkload::frame(index);
    }

  private:
    int ms_;
};

WorkloadFactory
tinyFactory()
{
    return [](const std::string &alias, int w,
              int h) -> std::unique_ptr<Workload> {
        if (alias != "fz-a" && alias != "fz-b")
            return nullptr;
        return std::make_unique<TinyWorkload>(alias, w, h);
    };
}

BenchParams
tinyParams(int jobs, const std::string &cache_dir = "")
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.warmup = 1;
    p.use_cache = !cache_dir.empty();
    p.cache_dir = cache_dir;
    p.jobs = jobs;
    return p;
}

std::vector<RunRequest>
tinyBatch(const GpuConfig &gpu)
{
    std::vector<RunRequest> reqs;
    for (const char *alias : {"fz-a", "fz-b"}) {
        reqs.push_back({alias, SimConfig::baseline(gpu)});
        reqs.push_back({alias, SimConfig::renderingElimination(gpu)});
        reqs.push_back({alias, SimConfig::evr(gpu)});
    }
    return reqs;
}

/** Canonical byte-level form of each result (host timing excluded). */
std::vector<std::string>
dumps(const std::vector<RunResult> &results)
{
    std::vector<std::string> out;
    for (const RunResult &r : results)
        out.push_back(r.toJson(false).dump(2));
    return out;
}

FaultPlan
planFor(FaultSite site, double rate, std::uint64_t seed)
{
    FaultPlan plan;
    plan[static_cast<int>(site)] = {true, rate, seed};
    return plan;
}

/** Fresh temp cache dir for one test. */
std::filesystem::path
freshCacheDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::vector<std::filesystem::path>
cacheEntries(const std::filesystem::path &dir, const std::string &ext)
{
    std::vector<std::filesystem::path> out;
    if (!std::filesystem::exists(dir))
        return out;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ext)
            out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
spit(const std::filesystem::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::trunc);
    out << text;
}

} // namespace

// ------------------------------------- corrupt-cache fuzz + quarantine --

TEST(CorruptCache, DamagedEntriesAreQuarantinedAndResimulated)
{
    std::filesystem::path dir = freshCacheDir("evrsim_fault_cache_fuzz");
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());

    // Reference sweep: warm the cache and record the canonical bytes.
    std::vector<std::string> want;
    {
        ExperimentRunner warm(tinyFactory(), tinyParams(1, dir.string()),
                              FaultPlan{});
        want = dumps(warm.runAll(reqs));
    }
    std::vector<std::filesystem::path> entries = cacheEntries(dir, ".json");
    ASSERT_EQ(entries.size(), reqs.size());

    // Fuzz modes, one per entry: truncation, value-level bit damage,
    // stale schema version, and a tampered checksum field.
    auto truncate = [](const std::filesystem::path &p) {
        std::string text = slurp(p);
        spit(p, text.substr(0, text.size() / 2));
    };
    auto bitflip = [](const std::filesystem::path &p) {
        std::string text = slurp(p);
        std::size_t i = text.find_last_of("0123456789");
        ASSERT_NE(i, std::string::npos);
        text[i] ^= 1; // 0x30..0x39 stays a digit under low-bit flips
        spit(p, text);
    };
    auto schema_bump = [](const std::filesystem::path &p) {
        Json doc = Json::parseOrDie(slurp(p));
        doc.set("schema", kResultCacheVersion + 1);
        spit(p, doc.dump(1));
    };
    auto crc_tamper = [](const std::filesystem::path &p) {
        Json doc = Json::parseOrDie(slurp(p));
        doc.set("payload_crc32",
                doc.find("payload_crc32")->asU64() ^ 0xdeadbeefu);
        spit(p, doc.dump(1));
    };
    std::vector<std::function<void(const std::filesystem::path &)>> modes =
        {truncate, bitflip, schema_bump, crc_tamper};

    for (std::size_t m = 0; m < modes.size(); ++m) {
        SCOPED_TRACE("fuzz mode " + std::to_string(m));
        modes[m](entries[m]);

        ExperimentRunner runner(tinyFactory(),
                                tinyParams(1, dir.string()), FaultPlan{});
        std::vector<std::string> got = dumps(runner.runAll(reqs));
        EXPECT_EQ(got, want)
            << "re-simulated results diverged from the clean sweep";

        SweepStats stats = runner.sweepStats();
        EXPECT_EQ(stats.quarantined, 1u);
        EXPECT_EQ(stats.simulated, 1u); // only the damaged entry
        EXPECT_EQ(stats.disk_hits, reqs.size() - 1);

        // The damaged bytes were set aside, and the slot re-published.
        std::vector<std::filesystem::path> corrupt =
            cacheEntries(dir, ".corrupt");
        ASSERT_EQ(corrupt.size(), 1u);
        EXPECT_EQ(cacheEntries(dir, ".json").size(), reqs.size());
        std::filesystem::remove(corrupt[0]);
    }
    std::filesystem::remove_all(dir);
}

TEST(CorruptCache, CacheReadInjectionQuarantinesEverythingAndRecovers)
{
    std::filesystem::path dir = freshCacheDir("evrsim_fault_cache_read");
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());

    std::vector<std::string> want;
    {
        ExperimentRunner warm(tinyFactory(), tinyParams(1, dir.string()),
                              FaultPlan{});
        want = dumps(warm.runAll(reqs));
    }

    ExperimentRunner faulty(tinyFactory(), tinyParams(1, dir.string()),
                            planFor(FaultSite::CacheRead, 1.0, 42));
    EXPECT_EQ(dumps(faulty.runAll(reqs)), want);
    SweepStats stats = faulty.sweepStats();
    EXPECT_EQ(stats.quarantined, reqs.size());
    EXPECT_EQ(stats.simulated, reqs.size());
    EXPECT_EQ(stats.disk_hits, 0u);
    EXPECT_EQ(faulty.faultInjector().injected(FaultSite::CacheRead),
              reqs.size());

    // Recovery re-published every entry: a clean runner is warm again.
    ExperimentRunner again(tinyFactory(), tinyParams(1, dir.string()),
                           FaultPlan{});
    EXPECT_EQ(dumps(again.runAll(reqs)), want);
    EXPECT_EQ(again.sweepStats().disk_hits, reqs.size());
    std::filesystem::remove_all(dir);
}

TEST(CorruptCache, CacheWriteInjectionPublishesNothingButStillAnswers)
{
    std::filesystem::path dir = freshCacheDir("evrsim_fault_cache_write");
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());

    std::vector<std::string> want;
    {
        ExperimentRunner clean(tinyFactory(), tinyParams(1), FaultPlan{});
        want = dumps(clean.runAll(reqs));
    }

    ExperimentRunner faulty(tinyFactory(), tinyParams(1, dir.string()),
                            planFor(FaultSite::CacheWrite, 1.0, 42));
    EXPECT_EQ(dumps(faulty.runAll(reqs)), want);
    EXPECT_TRUE(cacheEntries(dir, ".json").empty());
    EXPECT_TRUE(cacheEntries(dir, ".tmp").empty());
    std::filesystem::remove_all(dir);
}

// ----------------------------------------- retry, watchdog, reporting --

TEST(FaultRecovery, PermanentFailureIsBoundedAndReported)
{
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());
    ExperimentRunner runner(tinyFactory(), tinyParams(1),
                            planFor(FaultSite::JobExecute, 1.0, 7));

    BatchOutcome outcome = runner.runAllChecked(reqs);
    EXPECT_FALSE(outcome.ok());
    ASSERT_EQ(outcome.failures.size(), reqs.size());
    ASSERT_EQ(outcome.results.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const RunFailure &f = outcome.failures[i];
        EXPECT_EQ(f.index, i); // sorted, and here every run failed
        EXPECT_EQ(f.alias, reqs[i].alias);
        EXPECT_EQ(f.config, reqs[i].config.name);
        EXPECT_EQ(f.attempts, kJobMaxAttempts); // bounded, not infinite
        EXPECT_EQ(f.status.code(), ErrorCode::Unavailable);
        EXPECT_EQ(outcome.results[i].frames, 0); // default slot
    }

    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.failed, reqs.size());
    EXPECT_EQ(stats.retries,
              reqs.size() * static_cast<std::size_t>(kJobMaxAttempts - 1));
    EXPECT_EQ(stats.simulated, 0u);
    EXPECT_EQ(runner.faultInjector().draws(FaultSite::JobExecute),
              reqs.size() * static_cast<std::size_t>(kJobMaxAttempts));
}

TEST(FaultRecovery, RunExitsOnPermanentFailure)
{
    ExperimentRunner runner(tinyFactory(), tinyParams(1),
                            planFor(FaultSite::JobExecute, 1.0, 7));
    SimConfig cfg = SimConfig::baseline(tinyParams(1).gpuConfig());

    Result<RunResult> r = runner.tryRun("fz-a", cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::Unavailable);

    ExperimentRunner fatal_runner(tinyFactory(), tinyParams(1),
                                  planFor(FaultSite::JobExecute, 1.0, 7));
    EXPECT_EXIT(fatal_runner.run("fz-a", cfg),
                ::testing::ExitedWithCode(1), "failed after");
}

TEST(FaultRecovery, TransientWorkloadFaultRetriesThenSucceeds)
{
    std::atomic<int> failures_left{1};
    WorkloadFactory factory =
        [&failures_left](const std::string &alias, int w,
                         int h) -> std::unique_ptr<Workload> {
        if (alias != "fz-a")
            return nullptr;
        return std::make_unique<FlakyWorkload>(alias, w, h,
                                               &failures_left);
    };
    ExperimentRunner runner(factory, tinyParams(1), FaultPlan{});
    SimConfig cfg = SimConfig::baseline(tinyParams(1).gpuConfig());

    Result<RunResult> r = runner.tryRun("fz-a", cfg);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_GT(r.value().image_crc, 0u);

    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.retries, 1u); // attempt 1 threw, attempt 2 landed
    EXPECT_EQ(stats.simulated, 1u);
    EXPECT_EQ(stats.failed, 0u);
}

TEST(FaultRecovery, WatchdogCutsOffSlowJobsWithoutRetry)
{
    WorkloadFactory factory = [](const std::string &alias, int w,
                                 int h) -> std::unique_ptr<Workload> {
        if (alias != "fz-a")
            return nullptr;
        return std::make_unique<SlowWorkload>(alias, w, h, 25);
    };
    BenchParams params = tinyParams(1);
    params.job_timeout_ms = 1;
    ExperimentRunner runner(factory, params, FaultPlan{});

    Result<RunResult> r =
        runner.tryRun("fz-a", SimConfig::baseline(params.gpuConfig()));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::DeadlineExceeded);
    EXPECT_NE(r.status().message().find("EVRSIM_JOB_TIMEOUT_MS"),
              std::string::npos);

    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.retries, 0u); // deadline overruns are not transient
}

TEST(FaultRecovery, UnknownAliasIsNotFoundNotRetried)
{
    ExperimentRunner runner(tinyFactory(), tinyParams(1), FaultPlan{});
    Result<RunResult> r = runner.tryRun(
        "no-such-alias", SimConfig::baseline(tinyParams(1).gpuConfig()));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::NotFound);
    EXPECT_EQ(runner.sweepStats().retries, 0u);
}

TEST(FaultRecovery, FailuresAreMemoizedNotRetriedPerRequester)
{
    std::atomic<int> builds{0};
    WorkloadFactory factory =
        [&builds](const std::string &alias, int w,
                  int h) -> std::unique_ptr<Workload> {
        builds.fetch_add(1);
        (void)alias;
        (void)w;
        (void)h;
        return nullptr; // every build "fails": NotFound, permanent
    };
    ExperimentRunner runner(factory, tinyParams(1), FaultPlan{});
    SimConfig cfg = SimConfig::baseline(tinyParams(1).gpuConfig());

    EXPECT_FALSE(runner.tryRun("fz-a", cfg).ok());
    EXPECT_FALSE(runner.tryRun("fz-a", cfg).ok());
    EXPECT_EQ(builds.load(), 1); // second request hit the failure memo
    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.memo_hits, 1u);
}

// ----------------------------- partial results match a clean serial run --

TEST(FaultRecovery, SurvivorsOfAFaultySweepMatchTheCleanRun)
{
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());

    ExperimentRunner clean(tinyFactory(), tinyParams(1), FaultPlan{});
    std::vector<std::string> want = dumps(clean.runAll(reqs));

    // Moderate injected fault pressure, serial for a deterministic draw
    // order; some runs may exhaust their retries, the rest must be
    // byte-identical to the clean sweep.
    ExperimentRunner faulty(tinyFactory(), tinyParams(1),
                            planFor(FaultSite::JobExecute, 0.6, 11));
    BatchOutcome outcome = faulty.runAllChecked(reqs);
    ASSERT_EQ(outcome.results.size(), reqs.size());

    auto failed = [&](std::size_t i) {
        for (const RunFailure &f : outcome.failures)
            if (f.index == i)
                return true;
        return false;
    };
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (failed(i))
            continue;
        ++survivors;
        EXPECT_EQ(outcome.results[i].toJson(false).dump(2), want[i])
            << "survivor " << i << " diverged from the clean run";
    }
    EXPECT_EQ(survivors + outcome.failures.size(), reqs.size());
    EXPECT_EQ(faulty.sweepStats().failed, outcome.failures.size());

    // Deterministic injection: the same plan fails the same runs.
    ExperimentRunner replay(tinyFactory(), tinyParams(1),
                            planFor(FaultSite::JobExecute, 0.6, 11));
    BatchOutcome outcome2 = replay.runAllChecked(reqs);
    ASSERT_EQ(outcome2.failures.size(), outcome.failures.size());
    for (std::size_t i = 0; i < outcome.failures.size(); ++i)
        EXPECT_EQ(outcome2.failures[i].index, outcome.failures[i].index);
}
