/**
 * @file
 * Tests for the parallel experiment scheduler: JobPool semantics, the
 * EVRSIM_JOBS knob, in-flight deduplication of identical triples, the
 * atomic cache-write protocol, and — the load-bearing guarantee —
 * bit-identical results between serial (EVRSIM_JOBS=1) and parallel
 * execution.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "driver/experiment.hpp"
#include "common/job_pool.hpp"
#include "scene/mesh.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

// -------------------------------------------------------------- JobPool --

TEST(JobPool, RunsEverySubmittedJob)
{
    JobPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(JobPool, SingleThreadExecutesInlineInSubmissionOrder)
{
    JobPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::vector<int> order;
    std::thread::id submitter = std::this_thread::get_id();
    for (int i = 0; i < 5; ++i)
        pool.submit([&, i] {
            EXPECT_EQ(std::this_thread::get_id(), submitter);
            order.push_back(i);
        });
    pool.wait();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(JobPool, WaitBlocksUntilJobsFinish)
{
    JobPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            done.fetch_add(1);
        });
    pool.wait();
    EXPECT_EQ(done.load(), 8);
    pool.wait(); // idempotent on an idle pool
}

TEST(JobPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        JobPool pool(3);
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(JobPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(JobPool::defaultThreads(), 1);
}

// ------------------------------------------------- nested runBatch() --

TEST(JobPool, RunBatchRunsEveryJobAndReturnsAfterCompletion)
{
    JobPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 32; ++i)
        jobs.emplace_back([&] { count.fetch_add(1); });
    pool.runBatch(std::move(jobs));
    EXPECT_EQ(count.load(), 32);
    EXPECT_EQ(pool.failureCount(), 0u);
}

TEST(JobPool, RunBatchSingleThreadRunsInIndexOrderInline)
{
    JobPool pool(1);
    std::vector<int> order;
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 5; ++i)
        jobs.emplace_back([&, i] {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(i);
        });
    pool.runBatch(std::move(jobs));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(JobPool, NestedRunBatchFromInsideJobsDoesNotDeadlock)
{
    // The regression this API exists for: more outer jobs than workers,
    // each submitting a tile batch to the SAME pool from inside its own
    // job. A submit()+wait() scheme deadlocks here (every worker blocks
    // waiting for the global pending count, which includes itself); the
    // helping wait in runBatch() must complete all work instead.
    JobPool pool(2);
    std::atomic<int> tiles{0};
    for (int outer = 0; outer < 8; ++outer)
        pool.submit([&] {
            std::vector<std::function<void()>> batch;
            for (int t = 0; t < 16; ++t)
                batch.emplace_back([&] { tiles.fetch_add(1); });
            pool.runBatch(std::move(batch));
        });
    pool.wait();
    EXPECT_EQ(tiles.load(), 8 * 16);
    EXPECT_EQ(pool.failureCount(), 0u);
}

TEST(JobPool, RunBatchRethrowsLowestIndexExceptionDeterministically)
{
    for (int threads : {1, 4}) {
        JobPool pool(threads);
        std::atomic<int> ran{0};
        std::vector<std::function<void()>> jobs;
        for (int i = 0; i < 12; ++i)
            jobs.emplace_back([&, i] {
                ran.fetch_add(1);
                if (i == 3 || i == 9)
                    throw std::runtime_error("job " + std::to_string(i));
            });
        try {
            pool.runBatch(std::move(jobs));
            FAIL() << "runBatch swallowed the batch exceptions";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
        // Every job still ran (a failure costs one result, not the
        // batch), and nothing leaked into the pool's failure channel.
        EXPECT_EQ(ran.load(), 12);
        EXPECT_EQ(pool.failureCount(), 0u);
    }
}

TEST(JobPool, RunBatchEmptyIsANoOp)
{
    JobPool pool(3);
    pool.runBatch({});
    EXPECT_EQ(pool.pendingCount(), 0u);
}

// --------------------------------------------------------- EVRSIM_JOBS --

TEST(BenchParamsEnv, JobsKnobIsParsed)
{
    unsetenv("EVRSIM_JOBS");
    EXPECT_EQ(benchParamsFromEnv().jobs, 0);
    EXPECT_GE(benchParamsFromEnv().resolvedJobs(), 1);

    setenv("EVRSIM_JOBS", "3", 1);
    BenchParams p = benchParamsFromEnv();
    EXPECT_EQ(p.jobs, 3);
    EXPECT_EQ(p.resolvedJobs(), 3);
    unsetenv("EVRSIM_JOBS");
}

TEST(BenchParamsEnv, InvalidJobsIsFatal)
{
    setenv("EVRSIM_JOBS", "0", 1);
    EXPECT_EXIT(benchParamsFromEnv(), ::testing::ExitedWithCode(1),
                "EVRSIM_JOBS");
    unsetenv("EVRSIM_JOBS");
}

// -------------------------------------------- scheduler over workloads --

namespace {

/** A tiny deterministic workload; `alias` selects its look. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::string alias, int width, int height)
        : alias_(std::move(alias)), width_(width), height_(height)
    {
        quad_ = meshes::quad({1, 1, 1, 1});
    }

    Info
    info() const override
    {
        return {alias_, "Tiny " + alias_, "Test", false};
    }

    void setup(GpuSimulator &sim) override { sim.uploadMesh(quad_); }

    Scene
    frame(int index) override
    {
        // Per-alias geometry so different aliases give different images.
        float offset = alias_ == "tiny-a" ? 2.0f : 10.0f;
        Scene s;
        setCamera2D(s, width_, height_);
        DrawCommand &c = submitRect(s, &quad_, offset, offset, 20, 16,
                                    0.5f, RenderState{});
        c.tint = {0.4f + 0.1f * (index % 4), 0.3f, 0.2f, 1.0f};
        return s;
    }

  private:
    std::string alias_;
    int width_, height_;
    Mesh quad_;
};

/** Factory for tiny-a/tiny-b counting how many workloads it builds. */
WorkloadFactory
countingFactory(std::atomic<int> *builds)
{
    return [builds](const std::string &alias, int w,
                    int h) -> std::unique_ptr<Workload> {
        if (alias != "tiny-a" && alias != "tiny-b")
            return nullptr;
        builds->fetch_add(1);
        return std::make_unique<TinyWorkload>(alias, w, h);
    };
}

BenchParams
tinyParams(int jobs, const std::string &cache_dir = "")
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.warmup = 1;
    p.use_cache = !cache_dir.empty();
    p.cache_dir = cache_dir;
    p.jobs = jobs;
    return p;
}

/** The cross-product batch both determinism runners execute. */
std::vector<RunRequest>
tinyBatch(const GpuConfig &gpu)
{
    std::vector<RunRequest> reqs;
    for (const char *alias : {"tiny-a", "tiny-b"}) {
        reqs.push_back({alias, SimConfig::baseline(gpu)});
        reqs.push_back({alias, SimConfig::renderingElimination(gpu)});
        reqs.push_back({alias, SimConfig::evr(gpu)});
    }
    return reqs;
}

} // namespace

TEST(Scheduler, ParallelResultsAreByteIdenticalToSerial)
{
    std::atomic<int> builds_serial{0}, builds_parallel{0};

    ExperimentRunner serial(countingFactory(&builds_serial), tinyParams(1));
    ExperimentRunner parallel(countingFactory(&builds_parallel),
                              tinyParams(4));

    std::vector<RunRequest> reqs = tinyBatch(tinyParams(1).gpuConfig());
    std::vector<RunResult> a = serial.runAll(reqs);
    std::vector<RunResult> b = parallel.runAll(reqs);

    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        // Full serialized document (all stats + image_crc), minus the
        // host-timing field, must match byte for byte.
        EXPECT_EQ(a[i].toJson(false).dump(2), b[i].toJson(false).dump(2))
            << "run " << i << " (" << reqs[i].alias << ", "
            << reqs[i].config.name << ") diverged between jobs=1 and "
            << "jobs=4";
    }
    EXPECT_EQ(builds_serial.load(), static_cast<int>(reqs.size()));
    EXPECT_EQ(builds_parallel.load(), static_cast<int>(reqs.size()));
}

TEST(Scheduler, RunAllPreservesRequestOrder)
{
    std::atomic<int> builds{0};
    ExperimentRunner runner(countingFactory(&builds), tinyParams(4));
    std::vector<RunRequest> reqs = tinyBatch(tinyParams(4).gpuConfig());
    std::vector<RunResult> results = runner.runAll(reqs);
    ASSERT_EQ(results.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_EQ(results[i].workload, reqs[i].alias);
        EXPECT_EQ(results[i].config, reqs[i].config.name);
    }
}

TEST(Scheduler, DuplicateRequestsSimulateOnce)
{
    std::atomic<int> builds{0};
    ExperimentRunner runner(countingFactory(&builds), tinyParams(4));

    SimConfig cfg = SimConfig::baseline(tinyParams(4).gpuConfig());
    std::vector<RunRequest> reqs(8, RunRequest{"tiny-a", cfg});
    std::vector<RunResult> results = runner.runAll(reqs);

    EXPECT_EQ(builds.load(), 1);
    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.requested, 8u);
    EXPECT_EQ(stats.simulated, 1u);
    EXPECT_EQ(stats.memo_hits, 7u);
    for (const RunResult &r : results)
        EXPECT_EQ(r.image_crc, results[0].image_crc);
}

TEST(Scheduler, ConcurrentRunCallsDeduplicateInFlight)
{
    std::atomic<int> builds{0};
    ExperimentRunner runner(countingFactory(&builds), tinyParams(4));
    SimConfig cfg = SimConfig::evr(tinyParams(4).gpuConfig());

    std::vector<std::thread> threads;
    std::vector<std::uint32_t> crcs(6, 0);
    for (int t = 0; t < 6; ++t)
        threads.emplace_back([&, t] {
            crcs[static_cast<std::size_t>(t)] =
                runner.run("tiny-b", cfg).image_crc;
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(builds.load(), 1);
    for (std::uint32_t crc : crcs)
        EXPECT_EQ(crc, crcs[0]);
}

TEST(Scheduler, MemoServesRepeatRunsWithoutResimulating)
{
    std::atomic<int> builds{0};
    ExperimentRunner runner(countingFactory(&builds), tinyParams(1));
    SimConfig cfg = SimConfig::baseline(tinyParams(1).gpuConfig());

    RunResult first = runner.run("tiny-a", cfg);
    RunResult again = runner.run("tiny-a", cfg);
    EXPECT_EQ(builds.load(), 1);
    EXPECT_EQ(again.image_crc, first.image_crc);
    EXPECT_EQ(runner.sweepStats().memo_hits, 1u);
}

// ------------------------------------------------- atomic cache writes --

TEST(Scheduler, CacheWriteLeavesNoTempFilesAndParses)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "evrsim_sched_cache";
    std::filesystem::remove_all(dir);

    std::atomic<int> builds{0};
    {
        ExperimentRunner runner(countingFactory(&builds),
                                tinyParams(4, dir.string()));
        runner.runAll(tinyBatch(tinyParams(4).gpuConfig()));
    }

    int json_files = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        // The write-ahead sweep journal and the live-telemetry
        // heartbeat log live alongside the entries.
        if (entry.path().filename() == "sweep.journal" ||
            entry.path().filename() == "heartbeat.jsonl")
            continue;
        EXPECT_EQ(entry.path().extension(), ".json")
            << "leftover temp file " << entry.path();
        std::ifstream in(entry.path());
        std::ostringstream buf;
        buf << in.rdbuf();
        bool ok = false;
        std::string err;
        Json::parse(buf.str(), ok, err);
        EXPECT_TRUE(ok) << entry.path() << ": " << err;
        ++json_files;
    }
    EXPECT_EQ(json_files, 6);

    // A second runner over the same directory serves everything from
    // disk without building a single workload.
    std::atomic<int> builds2{0};
    ExperimentRunner warm(countingFactory(&builds2),
                          tinyParams(4, dir.string()));
    warm.runAll(tinyBatch(tinyParams(4).gpuConfig()));
    EXPECT_EQ(builds2.load(), 0);
    EXPECT_EQ(warm.sweepStats().disk_hits, 6u);

    std::filesystem::remove_all(dir);
}

// ------------------------------------------------ wall-clock recording --

TEST(Scheduler, SimulationRecordsWallClock)
{
    std::atomic<int> builds{0};
    ExperimentRunner runner(countingFactory(&builds), tinyParams(1));
    RunResult r = runner.simulate(
        "tiny-a", SimConfig::baseline(tinyParams(1).gpuConfig()));
    EXPECT_GT(r.sim_wall_ms, 0.0);

    Json with = r.toJson();
    EXPECT_TRUE(with.has("sim_wall_ms"));
    Json without = r.toJson(false);
    EXPECT_FALSE(without.has("sim_wall_ms"));

    RunResult back = RunResult::fromJson(with);
    EXPECT_DOUBLE_EQ(back.sim_wall_ms, r.sim_wall_ms);
    // Documents without the field (deterministic form) default to 0.
    EXPECT_DOUBLE_EQ(RunResult::fromJson(without).sim_wall_ms, 0.0);
}
