/**
 * @file
 * Deterministic fuzz harness over the defensive simulation core.
 *
 * The safety property under test (ISSUE: safe degradation): a permissive
 * run fed corrupted input — malformed scenes, flooded FVP tables, forged
 * signature state — must (a) never abort and (b) produce a final image
 * bit-identical to a baseline-no-EVR render of the same stream, with the
 * degradation surfaced in counters rather than in pixels.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "driver/experiment.hpp"
#include "scene/scene_fuzzer.hpp"
#include "scene/scene_validate.hpp"
#include "support.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

constexpr int kW = 64;
constexpr int kH = 48;

ValidationConfig
permissive(double sample_rate = 1.0)
{
    ValidationConfig v;
    v.mode = ValidateMode::Permissive;
    v.tile_sample_rate = sample_rate;
    return v;
}

SimConfig
withValidation(SimConfig c, const ValidationConfig &v)
{
    c.validation = v;
    return c;
}

/** Deterministic small scene: a backdrop plus a few varied quads. */
Scene
buildScene(const Mesh *quad, std::uint64_t seed, int frame)
{
    Rng rng(seed * 1021 + 17);
    Scene s;
    setCamera2D(s, kW, kH);

    RenderState woz;
    submitRect(s, quad, -1, -1, kW + 2, kH + 2, 0.9f, woz).tint = {
        0.2f, 0.5f, 0.3f, 1.0f};

    int n = 2 + static_cast<int>(rng.nextBelow(4));
    for (int i = 0; i < n; ++i) {
        RenderState rs;
        if (rng.nextBool(0.3f)) {
            rs.depth_write = false;
            rs.blend = BlendMode::Alpha;
        }
        float x = rng.nextFloat(0, kW - 16) + static_cast<float>(frame);
        float y = rng.nextFloat(0, kH - 12);
        float depth = 0.1f + 0.07f * static_cast<float>(i);
        DrawCommand &cmd = submitRect(s, quad, x, y, 16, 12, depth, rs);
        cmd.tint = {rng.nextFloat(0.2f, 1.0f), rng.nextFloat(0.2f, 1.0f),
                    rng.nextFloat(0.2f, 1.0f),
                    rs.blend == BlendMode::Alpha ? 0.5f : 1.0f};
    }
    return s;
}

} // namespace

TEST(SceneFuzzer, DeterministicAndVaried)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    quad.buffer_base = 0x1000; // pretend-uploaded; never rendered here

    std::vector<std::string> kinds;
    for (std::uint64_t key = 0; key < 16; ++key) {
        SceneFuzzer a(7), b(7);
        Scene sa = buildScene(&quad, 3, 0);
        Scene sb = buildScene(&quad, 3, 0);
        std::string da = a.corruptScene(sa, key);
        std::string db = b.corruptScene(sb, key);
        EXPECT_EQ(da, db) << "key " << key;
        EXPECT_FALSE(da.empty());
        // Every corruption must be one the ingestion audit can see.
        EXPECT_FALSE(auditScene(sa).ok()) << da;
        if (std::find(kinds.begin(), kinds.end(), da) == kinds.end())
            kinds.push_back(da);
    }
    // 16 keys must exercise more than one corruption kind.
    EXPECT_GT(kinds.size(), 3u);

    SceneFuzzer f(7);
    Scene empty;
    EXPECT_EQ(f.corruptScene(empty, 0), "");
}

TEST(SceneFuzz, PermissiveRunsMatchBaselineOnCorruptedStreams)
{
    // For many (seed, frame) corruptions: render the same corrupted
    // stream under permissive baseline and permissive full-EVR. Neither
    // may abort, and the images must stay bit-identical.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Mesh quad_a = meshes::quad({1, 1, 1, 1});
        Mesh quad_b = meshes::quad({1, 1, 1, 1});

        GpuSimulator base(withValidation(
            SimConfig::baseline(tinyGpu(kW, kH)), permissive(1.0)));
        GpuSimulator evr(withValidation(SimConfig::evr(tinyGpu(kW, kH)),
                                        permissive(1.0)));
        base.uploadMesh(quad_a);
        evr.uploadMesh(quad_b);

        SceneFuzzer fuzz_a(seed);
        SceneFuzzer fuzz_b(seed);

        std::uint64_t issues = 0;
        for (int frame = 0; frame < 4; ++frame) {
            Scene sa = buildScene(&quad_a, seed, frame);
            Scene sb = buildScene(&quad_b, seed, frame);
            std::uint64_t key = seed * 97 + static_cast<std::uint64_t>(frame);
            if (frame % 2 == 1) { // alternate clean and corrupted frames
                fuzz_a.corruptScene(sa, key);
                fuzz_b.corruptScene(sb, key);
            }

            FrameStats fa = base.renderFrame(sa);
            FrameStats fb = evr.renderFrame(sb);
            issues += fa.validate_scene_issues;

            ASSERT_TRUE(base.framebuffer().equals(evr.framebuffer()))
                << "seed " << seed << " frame " << frame << ": "
                << evr.framebuffer().diffCount(base.framebuffer())
                << " pixels differ";
            EXPECT_EQ(fa.validate_scene_issues, fb.validate_scene_issues);
            EXPECT_EQ(fa.validate_commands_dropped,
                      fb.validate_commands_dropped);
        }
        EXPECT_GT(issues, 0u) << "seed " << seed;
    }
}

TEST(SceneFuzz, FvpFloodDegradesButNeverChangesPixels)
{
    // Scenario-D flood (satellite d's property): corrupt every FVP
    // entry to a far-too-near depth so EVR predicts everything
    // occluded. The poisoning defense must keep the image bit-identical
    // to the baseline while the degradation counter records the cost.
    Mesh quad_a = meshes::quad({1, 1, 1, 1});
    Mesh quad_b = meshes::quad({1, 1, 1, 1});

    GpuSimulator base(SimConfig::baseline(tinyGpu(kW, kH)));
    GpuSimulator evr(withValidation(SimConfig::evr(tinyGpu(kW, kH)),
                                    permissive(1.0)));
    base.uploadMesh(quad_a);
    evr.uploadMesh(quad_b);

    for (int frame = 0; frame < 2; ++frame) {
        base.renderFrame(buildScene(&quad_a, 11, frame));
        evr.renderFrame(buildScene(&quad_b, 11, frame));
    }

    FvpTable &fvp = evr.mutableEvr()->mutableFvpTable();
    for (int t = 0; t < fvp.tileCount(); ++t)
        fvp.storeWoz(t, 0.01f);

    base.renderFrame(buildScene(&quad_a, 11, 2));
    FrameStats flooded = evr.renderFrame(buildScene(&quad_b, 11, 2));

    EXPECT_TRUE(evr.framebuffer().equals(base.framebuffer()))
        << evr.framebuffer().diffCount(base.framebuffer())
        << " pixels differ after FVP flood";
    EXPECT_GT(flooded.degraded_tiles, 0u);
    // The defense is the poison path, not the auditor: a sound pipeline
    // reports no invariant violations even under flooded predictions.
    EXPECT_EQ(flooded.validate_violations, 0u);

    // The next frame recovers: honest FVP state is rebuilt at tile end.
    base.renderFrame(buildScene(&quad_a, 11, 3));
    evr.renderFrame(buildScene(&quad_b, 11, 3));
    EXPECT_TRUE(evr.framebuffer().equals(base.framebuffer()));
}

TEST(SceneFuzz, GarbageSignaturesNeverCorruptTheImage)
{
    Mesh quad_a = meshes::quad({1, 1, 1, 1});
    Mesh quad_b = meshes::quad({1, 1, 1, 1});

    GpuSimulator base(SimConfig::baseline(tinyGpu(kW, kH)));
    GpuSimulator re(withValidation(
        SimConfig::renderingElimination(tinyGpu(kW, kH)), permissive(1.0)));
    base.uploadMesh(quad_a);
    re.uploadMesh(quad_b);

    Rng rng(99);
    for (int frame = 0; frame < 4; ++frame) {
        // Forge every previous-frame signature with random garbage.
        SignatureBuffer &sigs = re.mutableRe()->mutableSignatureBuffer();
        for (int t = 0; t < sigs.tileCount(); ++t) {
            Signature garbage;
            garbage.crc = static_cast<std::uint32_t>(rng.nextBelow(1u << 31));
            garbage.length = rng.nextBelow(4096);
            sigs.setPrevious(t, garbage, true);
        }
        base.renderFrame(buildScene(&quad_a, 23, frame));
        evrsim::FrameStats fs = re.renderFrame(buildScene(&quad_b, 23, frame));
        ASSERT_TRUE(re.framebuffer().equals(base.framebuffer()))
            << "frame " << frame;
        // Garbage previous signatures can only force re-renders (a CRC
        // collision with planted garbage is out of reach for this test),
        // never a wrong skip — so the identity audit stays clean.
        EXPECT_EQ(fs.validate_violations, 0u);
    }
}

TEST(SceneFuzz, SceneMutateFaultSiteThroughExperimentRunner)
{
    // End-to-end: EVRSIM_FAULT=scene-mutate corrupts workload frames
    // inside the runner; permissive validation sanitizes them; baseline
    // and EVR runs of the same workload still agree bit-for-bit because
    // the corruption is keyed by (alias, frame), not by config.
    BenchParams params;
    params.width = 128;
    params.height = 96;
    params.frames = 2;
    params.warmup = 1;
    params.use_cache = false;
    params.jobs = 1;
    params.validation = permissive(0.25);

    FaultPlan plan{};
    plan[static_cast<int>(FaultSite::SceneMutate)] = {true, 1.0, 42};

    ExperimentRunner runner(workloads::factory(), params, plan);
    GpuConfig gpu = params.gpuConfig();

    Result<RunResult> base = runner.tryRun("ctr", SimConfig::baseline(gpu));
    Result<RunResult> evr = runner.tryRun("ctr", SimConfig::evr(gpu));
    ASSERT_TRUE(base.ok()) << base.status().message();
    ASSERT_TRUE(evr.ok()) << evr.status().message();

    EXPECT_GT(runner.faultInjector().injected(FaultSite::SceneMutate), 0u);
    EXPECT_GT(base.value().totals.validate_scene_issues, 0u);
    EXPECT_EQ(base.value().image_crc, evr.value().image_crc);

    // The same corrupted stream under strict validation must fail the
    // run with a structured Status (no abort, no retry burn: scene
    // damage is not transient).
    BenchParams strict_params = params;
    strict_params.validation.mode = ValidateMode::Strict;
    ExperimentRunner strict_runner(workloads::factory(), strict_params,
                                   plan);
    Result<RunResult> failed =
        strict_runner.tryRun("ctr", SimConfig::baseline(gpu));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), ErrorCode::InvalidArgument);
    EXPECT_EQ(strict_runner.sweepStats().failed, 1u);
}

TEST(SceneFuzz, SweepReportCarriesDegradationCounters)
{
    // A run whose tiles get degraded surfaces the count in the sweep
    // stats (and therefore the bench fault report). Use the runner with
    // validation on and a workload, then check the accounting plumbing
    // via a direct simulation with seeded FVP corruption.
    BenchParams params;
    params.width = kW;
    params.height = kH;
    params.frames = 2;
    params.warmup = 0;
    params.use_cache = false;
    params.jobs = 1;
    params.validation = permissive(0.0625);

    ExperimentRunner runner(workloads::factory(), params);
    Result<RunResult> r = runner.tryRun("ctr", SimConfig::evr(params.gpuConfig()));
    ASSERT_TRUE(r.ok()) << r.status().message();

    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.degraded_tiles, r.value().totals.degraded_tiles);
    EXPECT_EQ(stats.validate_violations,
              r.value().totals.validate_violations);
    EXPECT_EQ(stats.validate_violations, 0u); // sound pipeline
}
