/**
 * @file
 * Unit tests for the Geometry Pipeline: vertex fetch/shade accounting,
 * near-plane clipping, backface culling, viewport rejection, binning
 * into display lists, Parameter Buffer layout and signature CRC inputs.
 */
#include <gtest/gtest.h>

#include "gpu/geometry_pipeline.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

/** Run the geometry pipeline over a scene; returns the stats. */
FrameStats
runGeometry(const GpuConfig &gpu, MemorySystem &mem, const Scene &scene,
            ParameterBuffer &pb, const GeometryHooks &hooks = {})
{
    FrameStats stats;
    pb.beginFrame(gpu.tileCount(), mem.addressSpace());
    GeometryPipeline geom(gpu, mem);
    geom.run(scene, pb, hooks, stats);
    return stats;
}

/** Fixture owning a small GPU and a quad mesh ready to draw. */
class GeometryTest : public ::testing::Test
{
  protected:
    GeometryTest() : gpu(tinyGpu()), mem(gpu.mem)
    {
        quad = meshes::quad({1, 1, 1, 1});
        quad.buffer_base = mem.addressSpace().allocVertex(
            quad.vertices.size() * kVertexBytes);
        scene2d();
    }

    void
    scene2d()
    {
        scene = Scene{};
        setCamera2D(scene, gpu.screen_width, gpu.screen_height);
    }

    void
    scene3d()
    {
        scene = Scene{};
        setCamera3D(scene, {0, 0, 5}, {0, 0, 0}, 60.0f,
                    static_cast<float>(gpu.screen_width) /
                        gpu.screen_height);
    }

    GpuConfig gpu;
    MemorySystem mem;
    Mesh quad;
    Scene scene;
    ParameterBuffer pb;
};

} // namespace

TEST_F(GeometryTest, QuadProducesTwoBinnedPrims)
{
    submitRect(scene, &quad, 4, 4, 8, 8, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_submitted, 2u);
    EXPECT_EQ(s.prims_binned, 2u);
    EXPECT_EQ(s.draw_commands, 1u);
    EXPECT_EQ(pb.prims().size(), 2u);
    // The 8x8 quad at (4,4) falls entirely inside tile (0,0).
    EXPECT_EQ(s.bin_tile_pairs, 2u);
    EXPECT_EQ(pb.firstList(0).size(), 2u);
}

TEST_F(GeometryTest, QuadSpanningTilesBinnedToEach)
{
    // 64x48 screen with 16px tiles = 4x3 tiles. A quad covering the top
    // two tile rows spans 8 tiles; each tile holds at least one of the
    // quad's two triangles (both only where the diagonal crosses it —
    // the binner is exact, not bbox-based).
    submitRect(scene, &quad, 0, 0, 64, 32, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_GE(s.bin_tile_pairs, 8u);
    EXPECT_LE(s.bin_tile_pairs, 16u);
    for (int tile = 0; tile < 8; ++tile)
        EXPECT_GE(pb.firstList(tile).size(), 1u) << "tile " << tile;
    for (int tile = 8; tile < 12; ++tile)
        EXPECT_TRUE(pb.firstList(tile).empty()) << "tile " << tile;
}

TEST_F(GeometryTest, DiagonalTriangleNotBinnedToUntouchedCorner)
{
    // A triangle covering the upper-left half of the screen must not be
    // binned into the bottom-right corner tile even though its bounding
    // box covers the whole screen.
    Mesh tri;
    tri.vertices = {
        {{0, 0, 0.5f}, {1, 1, 1, 1}, {0, 0}},
        {{64, 0, 0.5f}, {1, 1, 1, 1}, {1, 0}},
        {{0, 48, 0.5f}, {1, 1, 1, 1}, {0, 1}},
    };
    tri.indices = {0, 1, 2};
    tri.buffer_base = mem.addressSpace().allocVertex(3 * kVertexBytes);

    scene.submit(&tri, Mat4::identity(), RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_binned, 1u);
    // Bottom-right tile (3, 2) = index 11 must be empty.
    EXPECT_TRUE(pb.firstList(11).empty());
    // Top-left tile must have it.
    EXPECT_EQ(pb.firstList(0).size(), 1u);
}

TEST_F(GeometryTest, OffscreenPrimitiveRejected)
{
    submitRect(scene, &quad, 200, 200, 8, 8, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_binned, 0u);
    EXPECT_EQ(s.prims_clipped_away, 2u);
}

TEST_F(GeometryTest, VertexFetchUsesPostTransformCache)
{
    // A quad has 4 unique vertices referenced by 6 indices: the
    // post-transform cache must limit shading to 4.
    submitRect(scene, &quad, 4, 4, 8, 8, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.vertices_shaded, 4u);
    EXPECT_EQ(s.vertices_fetched, 4u);
}

TEST_F(GeometryTest, BackfaceCullingDropsAwayFacingTriangles)
{
    scene3d();
    RenderState cull;
    cull.cull_backface = true;
    Mesh box = meshes::box({1, 1, 1, 1});
    box.buffer_base =
        mem.addressSpace().allocVertex(box.vertices.size() * kVertexBytes);
    scene.submit(&box, Mat4::identity(), cull);
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_submitted, 12u);
    // The camera at (0,0,5) looking at the origin sees at most 3 faces
    // of a cube, so at least 3 faces (6 triangles) must be culled.
    EXPECT_GE(s.prims_backface_culled, 6u);
    EXPECT_GT(s.prims_binned, 0u);
}

TEST_F(GeometryTest, CullingDisabledKeepsAllFaces)
{
    scene3d();
    Mesh box = meshes::box({1, 1, 1, 1});
    box.buffer_base =
        mem.addressSpace().allocVertex(box.vertices.size() * kVertexBytes);
    RenderState no_cull;
    no_cull.cull_backface = false;
    scene.submit(&box, Mat4::identity(), no_cull);
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_backface_culled, 0u);
}

TEST_F(GeometryTest, NearPlaneClipSplitsCrossingTriangles)
{
    scene3d();
    // A long quad passing through the camera: part in front of the near
    // plane, part behind it.
    RenderState rs;
    scene.submit(&quad,
                 Mat4::rotateX(1.5708f) * Mat4::scale({4.0f, 40.0f, 1.0f}),
                 rs);
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_GT(s.prims_clip_split, 0u);
    EXPECT_GT(s.prims_binned, 0u);
}

TEST_F(GeometryTest, FullyBehindCameraRejected)
{
    scene3d();
    scene.submit(&quad, Mat4::translate({0, 0, 20.0f}), RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.prims_binned, 0u);
    EXPECT_EQ(s.prims_clipped_away, 2u);
}

TEST_F(GeometryTest, ZNearIsMinimumVertexDepth)
{
    scene3d();
    scene.submit(&quad,
                 Mat4::rotateX(0.8f) * Mat4::scale({2, 2, 1}),
                 RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    ASSERT_GT(s.prims_binned, 0u);
    for (const ShadedPrimitive &p : pb.prims()) {
        float min_d = std::min({p.v[0].depth, p.v[1].depth, p.v[2].depth});
        EXPECT_FLOAT_EQ(p.z_near, min_d);
    }
}

TEST_F(GeometryTest, TintChangesSignatureCrc)
{
    submitRect(scene, &quad, 4, 4, 8, 8, 0.5f, RenderState{});
    runGeometry(gpu, mem, scene, pb);
    std::uint32_t crc_before = pb.prim(0).attr_crc;

    scene.commands[0].tint = {0.5f, 1.0f, 1.0f, 1.0f};
    runGeometry(gpu, mem, scene, pb);
    EXPECT_NE(pb.prim(0).attr_crc, crc_before);
}

TEST_F(GeometryTest, IdenticalFramesProduceIdenticalCrcs)
{
    submitRect(scene, &quad, 4, 4, 24, 24, 0.5f, RenderState{});
    runGeometry(gpu, mem, scene, pb);
    std::vector<std::uint32_t> crcs;
    for (const auto &p : pb.prims())
        crcs.push_back(p.attr_crc);

    runGeometry(gpu, mem, scene, pb);
    ASSERT_EQ(pb.prims().size(), crcs.size());
    for (std::size_t i = 0; i < crcs.size(); ++i)
        EXPECT_EQ(pb.prim(i).attr_crc, crcs[i]);
}

TEST_F(GeometryTest, ParameterBufferTrafficAccounted)
{
    submitRect(scene, &quad, 0, 0, 64, 48, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.param_attr_bytes, 2u * ShadedPrimitive::kAttrBytes);
    EXPECT_EQ(s.param_list_bytes,
              s.bin_tile_pairs * DisplayListEntry::kBaseBytes);
    EXPECT_EQ(s.layer_param_bytes, 0u); // no EVR
    EXPECT_GT(mem.stats().tile_cache.writes, 0u);
}

TEST_F(GeometryTest, StoreLayersAddsParameterBytes)
{
    submitRect(scene, &quad, 0, 0, 64, 48, 0.5f, RenderState{});
    GeometryHooks hooks;
    hooks.store_layers = true;
    FrameStats s = runGeometry(gpu, mem, scene, pb, hooks);
    EXPECT_EQ(s.layer_param_bytes,
              s.bin_tile_pairs * DisplayListEntry::kLayerBytes);
}

TEST_F(GeometryTest, UnuploadedMeshIsRejectedNotFatal)
{
    // An unuploaded mesh used to abort the process; it is now a counted
    // rejection so a single bad command cannot take down a whole sweep.
    Mesh fresh = meshes::quad({1, 1, 1, 1});
    scene.submit(&fresh, Mat4::identity(), RenderState{});
    submitRect(scene, &quad, 0, 0, 64, 48, 0.5f, RenderState{});
    FrameStats s = runGeometry(gpu, mem, scene, pb);
    EXPECT_EQ(s.commands_rejected, 1u);
    EXPECT_EQ(s.draw_commands, 2u);
    EXPECT_EQ(s.prims_submitted, 2u); // the uploaded quad still renders
}

// ---------------------------------------------------- ParameterBuffer --

TEST(ParameterBuffer, TwoListOrdering)
{
    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(4, as);

    ShadedPrimitive p;
    std::uint32_t a = pb.addPrimitive(p);
    std::uint32_t b = pb.addPrimitive(p);
    std::uint32_t c = pb.addPrimitive(p);

    pb.append(0, {a, 0, false}, false, 4);
    pb.append(0, {b, 0, true}, true, 4);
    pb.append(0, {c, 0, false}, false, 4);

    auto order = pb.renderOrder(0);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].prim, a);
    EXPECT_EQ(order[1].prim, c);
    EXPECT_EQ(order[2].prim, b); // second list drains last
}

TEST(ParameterBuffer, MoveSecondToFirstPreservesRelativeOrder)
{
    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(1, as);
    ShadedPrimitive p;
    std::uint32_t ids[4];
    for (auto &id : ids)
        id = pb.addPrimitive(p);

    pb.append(0, {ids[0], 0, false}, false, 4);
    pb.append(0, {ids[1], 0, false}, true, 4);
    pb.append(0, {ids[2], 0, false}, true, 4);
    EXPECT_TRUE(pb.moveSecondToFirst(0));
    pb.append(0, {ids[3], 0, false}, false, 4);

    auto order = pb.renderOrder(0);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0].prim, ids[0]);
    EXPECT_EQ(order[1].prim, ids[1]);
    EXPECT_EQ(order[2].prim, ids[2]);
    EXPECT_EQ(order[3].prim, ids[3]);
    EXPECT_FALSE(pb.moveSecondToFirst(0)); // now empty
}

TEST(ParameterBuffer, EntryAddressesAreChunked)
{
    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(2, as);
    ShadedPrimitive p;
    std::uint32_t id = pb.addPrimitive(p);

    // Consecutive entries of one tile pack into the same 256 B chunk.
    Addr a0 = pb.append(0, {id, 0, false}, false, 4);
    Addr a1 = pb.append(0, {id, 0, false}, false, 4);
    EXPECT_EQ(a1, a0 + 4);

    // A different tile allocates its own chunk elsewhere.
    Addr b0 = pb.append(1, {id, 0, false}, false, 4);
    EXPECT_NE(b0, a0 + 8);
}

TEST(ParameterBuffer, BeginFrameResets)
{
    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(1, as);
    ShadedPrimitive p;
    pb.append(0, {pb.addPrimitive(p), 0, false}, false, 4);
    EXPECT_EQ(pb.firstList(0).size(), 1u);

    pb.beginFrame(1, as);
    EXPECT_TRUE(pb.firstList(0).empty());
    EXPECT_TRUE(pb.prims().empty());
}
