/**
 * @file
 * Tracer tests: EVRSIM_TRACE parsing, span balance and crash-context
 * bookkeeping, sampling, Chrome trace-event output validity (round-trip
 * through the driver JSON parser), result byte-identity with tracing on
 * vs off, and an end-to-end smoke sweep producing every observability
 * artifact (trace, metrics.json, heartbeat.jsonl, summary.json).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/crash_handler.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "driver/experiment.hpp"
#include "driver/json.hpp"
#include "driver/report.hpp"
#include "driver/supervisor.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;

namespace {

BenchParams
smokeParams(int jobs)
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 2;
    p.warmup = 1;
    p.use_cache = false;
    p.jobs = jobs;
    p.heartbeat_ms = 0; // tests that want telemetry opt in explicitly
    return p;
}

std::vector<RunRequest>
smokeBatch(const GpuConfig &gpu)
{
    std::vector<RunRequest> reqs;
    for (const char *alias : {"ccs", "300"}) {
        reqs.push_back({alias, SimConfig::baseline(gpu)});
        reqs.push_back({alias, SimConfig::evr(gpu)});
    }
    return reqs;
}

std::filesystem::path
freshDir(const char *name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TraceConfig
allCategories(std::string path)
{
    TraceConfig cfg;
    cfg.mask = (1u << kTraceCatCount) - 1;
    cfg.path = std::move(path);
    return cfg;
}

/** Every test leaves the tracer disabled so suites stay independent. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        traceConfigure(TraceConfig{});
        ::unsetenv("EVRSIM_TRACE");
    }
};

/** Parse the trace file and return the traceEvents array. */
Json
loadTraceEvents(const std::filesystem::path &path)
{
    Result<Json> doc = Json::tryParse(slurp(path));
    EXPECT_TRUE(doc.ok()) << doc.status().toString();
    if (!doc.ok())
        return Json::array();
    EXPECT_EQ(doc.value().at("displayTimeUnit").asString(), "ms");
    EXPECT_TRUE(doc.value().has("droppedEvents"));
    const Json &events = doc.value().at("traceEvents");
    EXPECT_EQ(events.type(), Json::Type::Array);
    return events;
}

std::size_t
countEventsNamed(const Json &events, const std::string &name)
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < events.size(); ++i)
        if (events.at(i).at("name").asString() == name)
            ++n;
    return n;
}

} // namespace

TEST_F(TraceTest, UnsetEnvYieldsDisabledConfig)
{
    ::unsetenv("EVRSIM_TRACE");
    Result<TraceConfig> cfg = traceConfigFromEnv();
    ASSERT_TRUE(cfg.ok()) << cfg.status().toString();
    EXPECT_FALSE(cfg.value().enabled());
}

TEST_F(TraceTest, EnvParsesCategoriesSamplingAndPath)
{
    ::setenv("EVRSIM_TRACE", "driver,tile/8:/tmp/spans.json", 1);
    Result<TraceConfig> cfg = traceConfigFromEnv();
    ASSERT_TRUE(cfg.ok()) << cfg.status().toString();
    EXPECT_TRUE(cfg.value().has(TraceCat::Driver));
    EXPECT_TRUE(cfg.value().has(TraceCat::Tile));
    EXPECT_FALSE(cfg.value().has(TraceCat::Frame));
    EXPECT_EQ(cfg.value().sample[static_cast<unsigned>(TraceCat::Tile)],
              8u);
    EXPECT_EQ(cfg.value().sample[static_cast<unsigned>(TraceCat::Driver)],
              1u);
    EXPECT_EQ(cfg.value().path, "/tmp/spans.json");

    ::setenv("EVRSIM_TRACE", "all", 1);
    cfg = traceConfigFromEnv();
    ASSERT_TRUE(cfg.ok()) << cfg.status().toString();
    for (std::size_t c = 0; c < kTraceCatCount; ++c)
        EXPECT_TRUE(cfg.value().has(static_cast<TraceCat>(c)));
    EXPECT_EQ(cfg.value().path, "evrsim_trace.json");
}

TEST_F(TraceTest, EnvRejectsMalformedSpecs)
{
    for (const char *bad : {"bogus", "driver,", "tile/0", "tile/x",
                            "driver//2", "all:"}) {
        ::setenv("EVRSIM_TRACE", bad, 1);
        Result<TraceConfig> cfg = traceConfigFromEnv();
        EXPECT_FALSE(cfg.ok()) << "accepted EVRSIM_TRACE=" << bad;
        if (!cfg.ok()) {
            EXPECT_NE(cfg.status().message().find("EVRSIM_TRACE"),
                      std::string::npos)
                << cfg.status().message();
        }
    }
}

TEST_F(TraceTest, DisabledSpansAreInactiveAndDepthFree)
{
    traceConfigure(TraceConfig{});
    EXPECT_FALSE(traceActive());
    EXPECT_FALSE(traceEnabled(TraceCat::Driver));
    TraceSpan span(TraceCat::Driver, "noop");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(traceActiveDepth(), 0);
    EXPECT_TRUE(traceWrite().ok()); // no-op, no file
}

TEST_F(TraceTest, NestedSpansBalanceAndFeedCrashContext)
{
    auto dir = freshDir("evrsim_trace_nest");
    traceConfigure(allCategories((dir / "t.json").string()));

    EXPECT_EQ(traceActiveDepth(), 0);
    {
        TraceSpan outer(TraceCat::Driver, "outer");
        ASSERT_TRUE(outer.active());
        EXPECT_EQ(traceActiveDepth(), 1);
        EXPECT_STREQ(crashContextInnermostSpanName(), "outer");
        EXPECT_STREQ(crashContextInnermostSpanCategory(), "driver");
        {
            TraceSpan inner(TraceCat::Stage, "inner");
            EXPECT_EQ(traceActiveDepth(), 2);
            EXPECT_STREQ(crashContextInnermostSpanName(), "inner");
            EXPECT_STREQ(crashContextInnermostSpanCategory(), "stage");
        }
        EXPECT_EQ(traceActiveDepth(), 1);
        EXPECT_STREQ(crashContextInnermostSpanName(), "outer");
    }
    EXPECT_EQ(traceActiveDepth(), 0);
    EXPECT_STREQ(crashContextInnermostSpanName(), "");
}

TEST_F(TraceTest, CategoryFilterAndSamplingSelectSpans)
{
    auto dir = freshDir("evrsim_trace_sample");
    TraceConfig cfg;
    cfg.mask = 1u << static_cast<unsigned>(TraceCat::Tile);
    cfg.sample[static_cast<unsigned>(TraceCat::Tile)] = 4;
    cfg.path = (dir / "t.json").string();
    traceConfigure(cfg);

    { // disabled category: inactive span, nothing recorded
        TraceSpan off(TraceCat::Frame, "frame");
        EXPECT_FALSE(off.active());
    }
    for (int i = 0; i < 8; ++i) {
        TraceSpan span(TraceCat::Tile, "tile");
    }

    ASSERT_TRUE(traceWrite().ok());
    Json events = loadTraceEvents(cfg.path);
    EXPECT_EQ(countEventsNamed(events, "tile"), 2u); // 1-in-4 of 8
    EXPECT_EQ(countEventsNamed(events, "frame"), 0u);
}

TEST_F(TraceTest, WriteProducesValidNestedChromeTrace)
{
    auto dir = freshDir("evrsim_trace_json");
    traceConfigure(allCategories((dir / "t.json").string()));

    {
        TraceSpan outer(TraceCat::Driver, "outer");
        outer.setDetail("quote\" slash\\ newline\n");
        outer.setValue(42);
        traceInstant(TraceCat::Cache, "cache-hit", "ccs/baseline");
        {
            TraceSpan inner(TraceCat::Stage, "inner");
        }
    }
    traceComplete(TraceCat::Driver, "queue-wait", traceNowNs(), 1000);

    ASSERT_TRUE(traceWrite().ok());
    Json events = loadTraceEvents(dir / "t.json");
    ASSERT_GT(events.size(), 0u);

    // Every event is well-formed; 'X' events carry a duration.
    bool saw_metadata = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        ASSERT_TRUE(e.has("name"));
        ASSERT_TRUE(e.has("ph"));
        ASSERT_TRUE(e.has("pid"));
        ASSERT_TRUE(e.has("tid"));
        const std::string ph = e.at("ph").asString();
        if (ph == "M")
            saw_metadata = true;
        if (ph == "X") {
            EXPECT_TRUE(e.has("dur"));
            EXPECT_TRUE(e.has("ts"));
        }
    }
    EXPECT_TRUE(saw_metadata);
    EXPECT_EQ(countEventsNamed(events, "outer"), 1u);
    EXPECT_EQ(countEventsNamed(events, "inner"), 1u);
    EXPECT_EQ(countEventsNamed(events, "cache-hit"), 1u);
    EXPECT_EQ(countEventsNamed(events, "queue-wait"), 1u);

    // The args land in the JSON.
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        if (e.at("name").asString() != "outer")
            continue;
        EXPECT_EQ(e.at("cat").asString(), "driver");
        EXPECT_EQ(e.at("args").at("value").asI64(), 42);
        EXPECT_EQ(e.at("args").at("detail").asString(),
                  "quote\" slash\\ newline\n");
    }

    // Structural nesting: per thread, 'X' intervals never partially
    // overlap (a stack of end-times must discharge cleanly).
    std::map<std::int64_t, std::vector<std::pair<double, double>>> per_tid;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        if (e.at("ph").asString() != "X")
            continue;
        per_tid[e.at("tid").asI64()].push_back(
            {e.at("ts").asDouble(), e.at("dur").asDouble()});
    }
    for (auto &kv : per_tid) {
        auto &spans = kv.second;
        std::sort(spans.begin(), spans.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second > b.second; // outer first on ties
                  });
        const double eps = 2e-3; // µs; events carry ns precision
        std::vector<double> ends;
        for (const auto &s : spans) {
            while (!ends.empty() && ends.back() <= s.first + eps)
                ends.pop_back();
            if (!ends.empty()) {
                EXPECT_LE(s.first + s.second, ends.back() + eps)
                    << "partially overlapping spans on tid " << kv.first;
            }
            ends.push_back(s.first + s.second);
        }
    }
}

TEST_F(TraceTest, WorkerLifetimeSpanCarriesPid)
{
    auto dir = freshDir("evrsim_trace_worker");
    traceConfigure(allCategories((dir / "t.json").string()));

    // /bin/true exits 0 without speaking the worker protocol, so the
    // outcome is a death — but the fork→exec→reap span still lands.
    WorkerLimits limits;
    WorkerOutcome out = superviseWorker({"/bin/true"}, limits);
    EXPECT_TRUE(out.worker_died);

    ASSERT_TRUE(traceWrite().ok());
    Json events = loadTraceEvents(dir / "t.json");
    bool found = false;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Json &e = events.at(i);
        if (e.at("name").asString() != "worker-lifetime")
            continue;
        found = true;
        EXPECT_EQ(e.at("cat").asString(), "worker");
        EXPECT_GT(e.at("args").at("value").asI64(), 0); // the child pid
        EXPECT_NE(e.at("args").at("detail").asString().find("/bin/true"),
                  std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST_F(TraceTest, ResultsByteIdenticalWithTracingOnVsOff)
{
    std::vector<RunRequest> reqs = smokeBatch(smokeParams(1).gpuConfig());

    traceConfigure(TraceConfig{});
    ExperimentRunner off(workloads::factory(), smokeParams(2));
    BatchOutcome a = off.runAllChecked(reqs);
    ASSERT_TRUE(a.ok());

    auto dir = freshDir("evrsim_trace_identity");
    traceConfigure(allCategories((dir / "t.json").string()));
    ExperimentRunner on(workloads::factory(), smokeParams(2));
    BatchOutcome b = on.runAllChecked(reqs);
    ASSERT_TRUE(b.ok());
    traceConfigure(TraceConfig{});

    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(a.results[i].toJson(false).dump(),
                  b.results[i].toJson(false).dump())
            << reqs[i].alias << "/" << reqs[i].config.name;
}

/**
 * The trace_smoke CI entry: a real 2-workload sweep with every
 * observability surface on, validating all four artifacts.
 */
TEST_F(TraceTest, SmokeSweepProducesAllObservabilityArtifacts)
{
    auto dir = freshDir("evrsim_trace_smoke");
    metricsReset();

    TraceConfig cfg = allCategories((dir / "trace.json").string());
    cfg.sample[static_cast<unsigned>(TraceCat::Tile)] = 16;
    traceConfigure(cfg);

    BenchParams params = smokeParams(2);
    params.metrics_dir = dir.string();
    params.heartbeat_ms = 25;
    ExperimentRunner runner(workloads::factory(), params);

    std::vector<RunRequest> reqs = smokeBatch(params.gpuConfig());
    BatchOutcome outcome = runner.runAllChecked(reqs);
    ASSERT_TRUE(outcome.ok());

    ASSERT_TRUE(runner.writeMetricsArtifacts().ok());
    std::string summary_path = (dir / "summary.json").string();
    ASSERT_TRUE(
        writeSweepSummaryJson(runner, outcome, summary_path).ok());
    ASSERT_TRUE(traceWrite().ok());
    traceConfigure(TraceConfig{});

    // Trace: driver spans and simulation spans both present.
    Json events = loadTraceEvents(dir / "trace.json");
    for (const char *name : {"job", "simulate", "frame", "geometry",
                             "raster", "queue-wait"})
        EXPECT_GT(countEventsNamed(events, name), 0u) << name;
    // 4 runs x (2 measured + 1 warmup) frames.
    EXPECT_EQ(countEventsNamed(events, "frame"), 12u);

    // Metrics: sweep gauges agree with the runner's own accounting.
    SweepStats stats = runner.sweepStats();
    Result<Json> metrics = Json::tryParse(slurp(dir / "metrics.json"));
    ASSERT_TRUE(metrics.ok()) << metrics.status().toString();
    std::map<std::string, double> gauges;
    const Json &entries = metrics.value().at("metrics");
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (entries.at(i).at("labels").size() == 0)
            gauges[entries.at(i).at("name").asString()] =
                entries.at(i).at("value").asDouble();
    EXPECT_EQ(gauges.at("evrsim_sweep_requested"),
              static_cast<double>(stats.requested));
    EXPECT_EQ(gauges.at("evrsim_sweep_simulated"),
              static_cast<double>(stats.simulated));
    EXPECT_EQ(gauges.at("evrsim_sweep_frames_simulated"),
              static_cast<double>(stats.frames_simulated));
    EXPECT_TRUE(std::filesystem::exists(dir / "metrics.prom"));

    // Heartbeat: valid JSONL whose terminal record covers the batch.
    std::ifstream hb(runner.heartbeatPath());
    ASSERT_TRUE(hb.good()) << runner.heartbeatPath();
    std::string line;
    Json last;
    std::size_t records = 0;
    while (std::getline(hb, line)) {
        if (line.empty())
            continue;
        Result<Json> rec = Json::tryParse(line);
        ASSERT_TRUE(rec.ok()) << line;
        last = rec.value();
        ++records;
    }
    ASSERT_GT(records, 0u);
    EXPECT_TRUE(last.at("final").asBool());
    EXPECT_EQ(last.at("completed").asU64(), reqs.size());
    EXPECT_EQ(last.at("total").asU64(), reqs.size());

    // Summary: the printed throughput table, machine-readable.
    Result<Json> summary = Json::tryParse(slurp(summary_path));
    ASSERT_TRUE(summary.ok()) << summary.status().toString();
    EXPECT_EQ(summary.value().at("requested").asU64(), stats.requested);
    EXPECT_EQ(summary.value().at("simulated").asU64(), stats.simulated);
    EXPECT_EQ(summary.value().at("failed").asU64(), 0u);
    EXPECT_EQ(summary.value().at("failures").size(), 0u);
}
