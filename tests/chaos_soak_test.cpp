/**
 * @file
 * Chaos soak: the whole shard fleet under sustained, deterministic
 * process- and wire-level chaos.
 *
 * Five legs over the same 20-workload sweep:
 *
 *  A. Quiet fleet — two shards, no chaos. Produces the golden
 *     RunResult bytes and must touch none of the failure machinery
 *     (every evrsim_fleet_* failure counter stays zero).
 *  B. Chaos fleet — EVRSIM_CHAOS arms worker-kill9, worker-stall and
 *     all three wire sites at low rates. The sweep must still
 *     complete, every surviving RunResult must be byte-identical to
 *     the golden run (simulations are deterministic; the fleet may
 *     only change *where* they execute, never what they compute), and
 *     the failure counters must be nonzero: chaos that nothing
 *     noticed is chaos that wasn't injected.
 *  C. Dead fleet — shards exec /bin/false, so the fleet is permanently
 *     unhealthy. Every run must gracefully degrade to the in-process
 *     fallback, still byte-identical.
 *  D. Quiet TCP fleet — the control plane listens on loopback and two
 *     real remote-shard child processes dial in and register. Same
 *     golden bytes; every remote-fleet counter (fences, reconnects,
 *     partitions, stale epochs) stays zero.
 *  E. TCP fleet under network chaos — net-partition/net-delay/
 *     net-reset/net-reconnect-storm plus worker-kill9 on the remote
 *     shards (a babysitter respawns the killed ones). The soak loops
 *     sweeps until the fleet has demonstrably fenced a lease, failed
 *     a run over and absorbed a re-registration — every pass still
 *     byte-identical to the quiet single-process golden.
 *
 * The binary doubles as the shard executable (--evrsim-shard=<i> for
 * pipes, --evrsim-remote-shard=<host:port> for TCP), exactly like the
 * daemon binary does, so the fleet under test runs real worker
 * processes over real sockets.
 */
#include <gtest/gtest.h>

#include <signal.h>
#include <stdlib.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/chaos.hpp"
#include "common/metrics.hpp"
#include "driver/experiment.hpp"
#include "driver/supervisor.hpp"
#include "service/fleet.hpp"
#include "service/service_protocol.hpp"
#include "service/tcp_transport.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace {

/** Small, fast, deterministic simulation parameters. */
BenchParams
soakParams()
{
    BenchParams p;
    p.width = 160;
    p.height = 96;
    p.frames = 1;
    p.warmup = 0;
    p.use_cache = false;
    p.jobs = 1;
    p.heartbeat_ms = 0;
    p.write_summary = false;
    p.log_level = LogLevel::Quiet;
    return p;
}

FleetConfig
soakFleetConfig()
{
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.shard_argv = {selfExecutablePath()};
    cfg.shard_params_json = shardParamsJson(soakParams());
    // Generous ping deadline: this soak also runs on contended
    // single-core CI boxes where a cold shard's first simulation can
    // starve its reader thread for a while; liveness pings must only
    // catch real stalls (the chaos stall is 2.5s), not scheduling lag.
    cfg.ping_interval_ms = 150;
    cfg.ping_deadline_ms = 1500;
    cfg.breaker_threshold = 2;
    cfg.restart_backoff_base_ms = 50;
    cfg.restart_backoff_cap_ms = 500;
    // Covers a dropped result line (the failover trigger) without
    // making each one glacial; a cold 160x96 single-frame simulation
    // is tens of milliseconds.
    cfg.run_deadline_ms = 3000;
    cfg.poll_ms = 25;
    return cfg;
}

/** The soak sweep: every Table III workload, alternating configs. */
std::vector<std::pair<std::string, std::string>>
soakPairs()
{
    std::vector<std::pair<std::string, std::string>> pairs;
    const std::vector<std::string> &aliases = workloads::allAliases();
    for (std::size_t i = 0; i < aliases.size(); ++i)
        pairs.emplace_back(aliases[i], i % 2 == 0 ? "baseline" : "evr");
    return pairs;
}

/** In-process fallback sharing the shard's simulation parameters. */
ShardFleet::DegradedRunFn
degradedRunner(ExperimentRunner &runner)
{
    return [&runner](const std::string &alias, const SimConfig &config) {
        return runner.trySimulate(alias, config);
    };
}

/** Run the sweep; returns pair-key -> deterministic result bytes.
 *  Fails the test (and returns what it has) on any failed run. */
std::map<std::string, std::string>
runSweep(ShardFleet &fleet, const BenchParams &params)
{
    std::map<std::string, std::string> out;
    for (const auto &[alias, config_name] : soakPairs()) {
        Result<SimConfig> config =
            configByName(config_name, params.gpuConfig());
        EXPECT_TRUE(config.ok());
        if (!config.ok())
            continue;
        std::string key = alias + "/" + config_name;
        WorkerAttempt a = fleet.execute(alias, config.value(), key);
        EXPECT_TRUE(a.status.ok())
            << key << ": " << a.status.toString()
            << (a.worker_died ? " (worker died)" : "");
        if (a.status.ok())
            out[key] = a.result.toJson(false).dump(0);
    }
    return out;
}

double
counterOrZero(const std::string &name)
{
    Result<double> v = metricsValue(name);
    return v.ok() ? v.value() : 0.0;
}

TEST(ChaosSoak, SweepSurvivesChaosByteIdentically)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads under sanitizers is not supported";
#endif
    ASSERT_FALSE(selfExecutablePath().empty());
    ::unsetenv("EVRSIM_CHAOS");
    BenchParams params = soakParams();
    ExperimentRunner fallback(workloads::factory(), params);

    // --- Leg A: quiet fleet -> golden bytes, zero failure counters.
    metricsReset();
    std::map<std::string, std::string> golden;
    {
        ShardFleet fleet(soakFleetConfig(), degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        golden = runSweep(fleet, params);
        fleet.stop();

        ShardFleet::Stats st = fleet.stats();
        EXPECT_EQ(st.dispatched, soakPairs().size());
        EXPECT_EQ(st.completed, soakPairs().size());
        EXPECT_EQ(st.restarts, 0u);
        EXPECT_EQ(st.breaker_opens, 0u);
        EXPECT_EQ(st.failovers, 0u);
        EXPECT_EQ(st.degraded, 0u);
        EXPECT_EQ(st.wire_errors, 0u);
        EXPECT_EQ(counterOrZero("evrsim_fleet_restarts_total"), 0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_breaker_opens_total"),
                  0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_failovers_total"), 0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_degraded_total"), 0.0);
    }
    ASSERT_EQ(golden.size(), soakPairs().size());

    // --- Leg B: the same sweep under sustained chaos.
    metricsReset();
    ::setenv("EVRSIM_CHAOS",
             "worker-kill9:0.08:11,worker-stall:0.03:12,"
             "wire-corrupt:0.05:13,wire-drop:0.04:14,wire-dup:0.05:15",
             1);
    {
        ShardFleet fleet(soakFleetConfig(), degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());

        // Soak: keep sweeping (each pass byte-checked against the
        // golden run) until the fleet has demonstrably restarted a
        // shard, opened a breaker and failed a run over — or the time
        // budget runs out. A single 20-run sweep can finish before a
        // killed shard has even served its restart backoff, so one
        // pass observing all three modes is a coin flip; the soak loop
        // makes the assertion about the *machinery*, not the dice.
        const auto soak_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(60);
        int passes = 0;
        for (;;) {
            std::map<std::string, std::string> chaotic =
                runSweep(fleet, params);
            ++passes;

            // Every run completed, and completed *identically*: chaos
            // may move a run between shards or into the fallback, but
            // the simulation bytes must not notice.
            ASSERT_EQ(chaotic.size(), golden.size());
            for (const auto &[key, bytes] : golden)
                EXPECT_EQ(chaotic.at(key), bytes)
                    << key << " (pass " << passes << ")";

            ShardFleet::Stats st = fleet.stats();
            if (st.restarts > 0 && st.breaker_opens > 0 &&
                st.failovers > 0)
                break;
            if (std::chrono::steady_clock::now() >= soak_deadline)
                break;
        }
        fleet.stop();
        ::unsetenv("EVRSIM_CHAOS");

        // Chaos nothing noticed is chaos that wasn't injected: the
        // fleet must have absorbed real failures.
        ShardFleet::Stats st = fleet.stats();
        EXPECT_GT(st.restarts, 0u) << passes << " passes";
        EXPECT_GT(st.breaker_opens, 0u) << passes << " passes";
        EXPECT_GT(st.failovers, 0u) << passes << " passes";
        EXPECT_GT(counterOrZero("evrsim_fleet_restarts_total"), 0.0);
        EXPECT_GT(counterOrZero("evrsim_fleet_breaker_opens_total"),
                  0.0);
        EXPECT_GT(counterOrZero("evrsim_fleet_failovers_total"), 0.0);
    }

    // --- Leg C: whole fleet dead -> graceful degradation.
    metricsReset();
    {
        FleetConfig cfg = soakFleetConfig();
        cfg.shard_argv = {"/bin/false"};
        cfg.run_deadline_ms = 300;
        // Long enough that the dead shards stay dead for the sweep.
        cfg.restart_backoff_base_ms = 4000;
        cfg.restart_backoff_cap_ms = 8000;

        ShardFleet fleet(cfg, degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        // Let both shards die and be marked down before sweeping, so
        // the ring skips them instantly instead of timing out.
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        std::map<std::string, std::string> degraded =
            runSweep(fleet, params);
        fleet.stop();

        ASSERT_EQ(degraded.size(), golden.size());
        for (const auto &[key, bytes] : golden)
            EXPECT_EQ(degraded.at(key), bytes) << key;

        ShardFleet::Stats st = fleet.stats();
        EXPECT_EQ(st.degraded, soakPairs().size());
        EXPECT_EQ(st.completed, soakPairs().size());
        EXPECT_GT(counterOrZero("evrsim_fleet_degraded_total"), 0.0);
    }
}

// --- remote (TCP) fleet legs ----------------------------------------

/** Fleet config for the loopback-TCP legs: same simulation subset,
 *  lease shorter than the chaos partition window (2.5 s) so a
 *  partitioned shard demonstrably loses its lease. */
FleetConfig
remoteSoakFleetConfig()
{
    FleetConfig cfg;
    cfg.shards = 2;
    cfg.listen = "127.0.0.1:0";
    cfg.shard_params_json = shardParamsJson(soakParams());
    cfg.ping_interval_ms = 150;
    cfg.lease_ms = 1200;
    cfg.breaker_threshold = 2;
    cfg.run_deadline_ms = 3000;
    cfg.poll_ms = 25;
    return cfg;
}

/** Fork one remote-shard child dialing @p addr (re-exec of this
 *  binary, like the pipe shards). */
pid_t
spawnRemoteShard(const std::string &addr)
{
    std::string self = selfExecutablePath();
    std::string flag = "--evrsim-remote-shard=" + addr;
    pid_t pid = ::fork();
    if (pid == 0) {
        ::execl(self.c_str(), self.c_str(), flag.c_str(),
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    return pid;
}

bool
waitForRegistrations(ShardFleet &fleet, std::uint64_t n, int budget_ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (fleet.stats().registrations >= n)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return false;
}

void
reapChild(pid_t pid, int sig)
{
    if (pid <= 0)
        return;
    ::kill(pid, sig);
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
}

TEST(RemoteFleetSoak, TcpFleetSurvivesNetworkChaosByteIdentically)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads under sanitizers is not supported";
#endif
    ASSERT_FALSE(selfExecutablePath().empty());
    ::unsetenv("EVRSIM_CHAOS");
    BenchParams params = soakParams();
    ExperimentRunner fallback(workloads::factory(), params);

    // The quiet *single-process* golden: no fleet at all. Remote
    // execution may move runs between machines; it must never move
    // the bytes.
    std::map<std::string, std::string> golden;
    for (const auto &[alias, config_name] : soakPairs()) {
        Result<SimConfig> config =
            configByName(config_name, params.gpuConfig());
        ASSERT_TRUE(config.ok());
        Result<RunResult> r =
            fallback.trySimulate(alias, config.value());
        ASSERT_TRUE(r.ok()) << alias << ": " << r.status().toString();
        golden[alias + "/" + config_name] =
            r.value().toJson(false).dump(0);
    }

    // --- Leg D: quiet TCP fleet -> golden bytes, zero remote-fleet
    // failure counters.
    metricsReset();
    {
        ShardFleet fleet(remoteSoakFleetConfig(),
                         degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        std::string addr = fleet.listenAddress();
        ASSERT_FALSE(addr.empty());
        pid_t kid0 = spawnRemoteShard(addr);
        pid_t kid1 = spawnRemoteShard(addr);
        ASSERT_TRUE(waitForRegistrations(fleet, 2, 10000));

        std::map<std::string, std::string> quiet =
            runSweep(fleet, params);
        ASSERT_EQ(quiet.size(), golden.size());
        for (const auto &[key, bytes] : golden)
            EXPECT_EQ(quiet.at(key), bytes) << key;

        ShardFleet::Stats st = fleet.stats();
        EXPECT_EQ(st.completed, soakPairs().size());
        EXPECT_EQ(st.registrations, 2u);
        EXPECT_EQ(st.fences, 0u);
        EXPECT_EQ(st.reconnects, 0u);
        EXPECT_EQ(st.partitions, 0u);
        EXPECT_EQ(st.stale_epochs, 0u);
        EXPECT_EQ(st.failovers, 0u);
        EXPECT_EQ(st.degraded, 0u);
        // A quiet fleet *asserts* quiet from metrics, not by absence.
        EXPECT_EQ(counterOrZero("evrsim_fleet_fences_total"), 0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_reconnects_total"), 0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_partitions_total"), 0.0);
        EXPECT_EQ(counterOrZero("evrsim_fleet_stale_epochs_total"),
                  0.0);

        fleet.stop();
        reapChild(kid0, SIGTERM);
        reapChild(kid1, SIGTERM);
    }

    // --- Leg E: the same sweep under sustained network chaos plus
    // worker-kill9 on the remote shards.
    metricsReset();
    ::setenv("EVRSIM_CHAOS",
             "net-partition:0.008:21,net-delay:0.03:22,"
             "net-reset:0.02:23,net-reconnect-storm:0.01:24,"
             "worker-kill9:0.05:25",
             1);
    {
        ShardFleet fleet(remoteSoakFleetConfig(),
                         degradedRunner(fallback));
        ASSERT_TRUE(fleet.start().ok());
        std::string addr = fleet.listenAddress();
        ASSERT_FALSE(addr.empty());

        // Babysitter: remote shards are *processes* and kill9 chaos
        // really kills them; respawn so the fleet can always refill.
        std::mutex kids_mu;
        std::vector<pid_t> kids = {spawnRemoteShard(addr),
                                   spawnRemoteShard(addr)};
        std::atomic<bool> stop_sitter{false};
        std::thread sitter([&] {
            while (!stop_sitter.load()) {
                {
                    std::lock_guard<std::mutex> lock(kids_mu);
                    for (pid_t &kid : kids) {
                        int wstatus = 0;
                        if (kid > 0 &&
                            ::waitpid(kid, &wstatus, WNOHANG) == kid)
                            kid = spawnRemoteShard(addr);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
        });
        ASSERT_TRUE(waitForRegistrations(fleet, 1, 15000));

        // Soak until the remote failure machinery has demonstrably
        // fired — a fence, a failover and a re-registration — or the
        // time budget runs out. Every pass stays byte-identical.
        const auto soak_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(90);
        int passes = 0;
        for (;;) {
            std::map<std::string, std::string> chaotic =
                runSweep(fleet, params);
            ++passes;
            ASSERT_EQ(chaotic.size(), golden.size());
            for (const auto &[key, bytes] : golden)
                EXPECT_EQ(chaotic.at(key), bytes)
                    << key << " (pass " << passes << ")";

            ShardFleet::Stats st = fleet.stats();
            if (st.fences > 0 && st.failovers > 0 &&
                st.reconnects > 0)
                break;
            if (std::chrono::steady_clock::now() >= soak_deadline)
                break;
        }
        fleet.stop();
        stop_sitter.store(true);
        sitter.join();
        {
            std::lock_guard<std::mutex> lock(kids_mu);
            for (pid_t kid : kids)
                reapChild(kid, SIGKILL);
        }
        ::unsetenv("EVRSIM_CHAOS");

        ShardFleet::Stats st = fleet.stats();
        EXPECT_GT(st.fences, 0u) << passes << " passes";
        EXPECT_GT(st.failovers, 0u) << passes << " passes";
        EXPECT_GT(st.reconnects, 0u) << passes << " passes";
        EXPECT_GT(counterOrZero("evrsim_fleet_fences_total"), 0.0);
        EXPECT_GT(counterOrZero("evrsim_fleet_reconnects_total"), 0.0);
    }
}

} // namespace
} // namespace evrsim

/** The binary doubles as the shard program (like evrsim-daemon):
 *  --evrsim-shard=<i> serves a pipe shard, --evrsim-remote-shard=
 *  <host:port> dials a control plane and serves a TCP shard. */
int
main(int argc, char **argv)
{
    std::string shard_params;
    int shard_index =
        evrsim::shardFlagFromArgv(argc, argv, shard_params);
    if (shard_index >= 0)
        evrsim::runShardAndExit(shard_index,
                                evrsim::workloads::factory(),
                                evrsim::BenchParams{}, shard_params);
    std::string remote_plane =
        evrsim::remoteShardFlagFromArgv(argc, argv);
    if (!remote_plane.empty())
        evrsim::runRemoteShardAndExit(remote_plane,
                                      evrsim::workloads::factory(),
                                      evrsim::BenchParams{});
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
