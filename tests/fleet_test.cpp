/**
 * @file
 * Fleet + chaos unit suite: the EVRSIM_CHAOS grammar and its
 * deterministic draw streams, the wire-damage transform, content-key
 * routing, the circuit-breaker transition table, restart backoff, the
 * shard params round-trip, the argv probe, and the whole-fleet-dead
 * degradation path (no shard ever execs; every run must take the
 * in-daemon fallback and be counted).
 *
 * Process-level fleet behaviour under live chaos (kills, stalls,
 * corruption) is the chaos_soak_test's job.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/chaos.hpp"
#include "common/metrics.hpp"
#include "service/fleet.hpp"
#include "service/service_protocol.hpp"

namespace evrsim {
namespace {

// --- chaos grammar --------------------------------------------------

TEST(ChaosPlanParse, ParsesSitesRatesAndSeeds)
{
    Result<ChaosPlan> plan = ChaosInjector::parsePlan(
        "worker-kill9:0.25:7,wire-corrupt:1:3,wire-drop:0:9");
    ASSERT_TRUE(plan.ok()) << plan.status().toString();

    const ChaosSpec &kill =
        plan.value()[static_cast<int>(ChaosSite::WorkerKill9)];
    EXPECT_TRUE(kill.enabled);
    EXPECT_DOUBLE_EQ(kill.rate, 0.25);
    EXPECT_EQ(kill.seed, 7u);

    const ChaosSpec &corrupt =
        plan.value()[static_cast<int>(ChaosSite::WireCorrupt)];
    EXPECT_TRUE(corrupt.enabled);
    EXPECT_DOUBLE_EQ(corrupt.rate, 1.0);

    EXPECT_FALSE(
        plan.value()[static_cast<int>(ChaosSite::WorkerStall)].enabled);
    EXPECT_FALSE(
        plan.value()[static_cast<int>(ChaosSite::WireDup)].enabled);
}

TEST(ChaosPlanParse, RejectsMalformedSpecsNamingTheProblem)
{
    Result<ChaosPlan> bad = ChaosInjector::parsePlan("worker-kill9:0.5");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("<site>:<rate>:<seed>"),
              std::string::npos);

    bad = ChaosInjector::parsePlan("worker-kill:0.5:1");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("unknown chaos site"),
              std::string::npos);

    bad = ChaosInjector::parsePlan("wire-drop:1.5:1");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("[0, 1]"), std::string::npos);

    bad = ChaosInjector::parsePlan("wire-drop:0.5:-2");
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.status().message().find("non-negative"),
              std::string::npos);
}

TEST(ChaosPlanParse, EnvUnsetDisablesEverySite)
{
    ::unsetenv("EVRSIM_CHAOS");
    ChaosInjector chaos(ChaosInjector::planFromEnv());
    EXPECT_FALSE(chaos.enabled());
    EXPECT_FALSE(chaos.shouldFire(ChaosSite::WorkerKill9));
    EXPECT_EQ(chaos.fired(ChaosSite::WorkerKill9), 0u);
}

TEST(ChaosDraws, DeterministicPerSeedAndCounter)
{
    ChaosPlan plan = ChaosInjector::parsePlan("worker-kill9:0.3:42")
                         .value();
    ChaosInjector a(plan), b(plan);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.shouldFire(ChaosSite::WorkerKill9),
                  b.shouldFire(ChaosSite::WorkerKill9))
            << "draw " << i;
    EXPECT_EQ(a.draws(ChaosSite::WorkerKill9), 200u);
    EXPECT_EQ(a.fired(ChaosSite::WorkerKill9),
              b.fired(ChaosSite::WorkerKill9));
    // Rate 0.3 over 200 draws fires sometimes, not always.
    EXPECT_GT(a.fired(ChaosSite::WorkerKill9), 0u);
    EXPECT_LT(a.fired(ChaosSite::WorkerKill9), 200u);
}

TEST(ChaosDraws, RateEndpointsAreExact)
{
    ChaosPlan plan =
        ChaosInjector::parsePlan("wire-drop:1:1,wire-dup:0:1").value();
    ChaosInjector chaos(plan);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(chaos.shouldFire(ChaosSite::WireDrop));
        EXPECT_FALSE(chaos.shouldFire(ChaosSite::WireDup));
    }
}

// --- wire damage transform ------------------------------------------

TEST(WireChaos, CorruptFlipsOneNonNewlineByte)
{
    ChaosInjector chaos(
        ChaosInjector::parsePlan("wire-corrupt:1:5").value());
    std::string line = "{\"schema\":1,\"payload\":{}}\n";
    std::string out = applyWireChaos(chaos, line);
    ASSERT_EQ(out.size(), line.size());
    EXPECT_EQ(out.back(), '\n'); // framing newline never touched
    int diffs = 0;
    for (std::size_t i = 0; i < line.size(); ++i)
        if (out[i] != line[i])
            ++diffs;
    EXPECT_EQ(diffs, 1);
}

TEST(WireChaos, DropReturnsNothingAndBeatsDup)
{
    ChaosInjector chaos(
        ChaosInjector::parsePlan("wire-drop:1:5,wire-dup:1:6").value());
    EXPECT_TRUE(applyWireChaos(chaos, "payload\n").empty());
}

TEST(WireChaos, DupDoublesTheLine)
{
    ChaosInjector chaos(
        ChaosInjector::parsePlan("wire-dup:1:5").value());
    EXPECT_EQ(applyWireChaos(chaos, "payload\n"), "payload\npayload\n");
}

// --- routing --------------------------------------------------------

TEST(ShardRouting, StableAndInRange)
{
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 64; ++i) {
        std::string key = "workload-" + std::to_string(i) + "/base";
        int shard = shardIndexForKey(key, 4);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, 4);
        EXPECT_EQ(shard, shardIndexForKey(key, 4)); // stable
        ++counts[shard];
    }
    // FNV over distinct keys spreads; no shard monopolizes the sweep.
    for (int c : counts)
        EXPECT_LT(c, 64);
    EXPECT_EQ(shardIndexForKey("anything", 1), 0);
}

// --- circuit breaker ------------------------------------------------

TEST(CircuitBreakerTable, OpensOnNthConsecutiveFailure)
{
    CircuitBreaker b;
    b.threshold = 3;
    EXPECT_EQ(b.state, BreakerState::Closed);
    EXPECT_TRUE(b.admits());

    EXPECT_FALSE(b.recordFailure());
    EXPECT_FALSE(b.recordFailure());
    EXPECT_TRUE(b.admits());
    EXPECT_TRUE(b.recordFailure()); // third consecutive: transition
    EXPECT_EQ(b.state, BreakerState::Open);
    EXPECT_FALSE(b.admits());
    EXPECT_FALSE(b.recordFailure()); // already open: no new transition
}

TEST(CircuitBreakerTable, SuccessResetsTheStreak)
{
    CircuitBreaker b;
    b.threshold = 3;
    b.recordFailure();
    b.recordFailure();
    b.recordSuccess();
    EXPECT_EQ(b.consecutive_failures, 0);
    EXPECT_FALSE(b.recordFailure());
    EXPECT_FALSE(b.recordFailure());
    EXPECT_EQ(b.state, BreakerState::Closed);
}

TEST(CircuitBreakerTable, HalfOpenProbeClosesOrReopens)
{
    CircuitBreaker b;
    b.threshold = 2;
    b.recordFailure();
    b.recordFailure();
    ASSERT_EQ(b.state, BreakerState::Open);

    b.onRestart();
    EXPECT_EQ(b.state, BreakerState::HalfOpen);
    EXPECT_TRUE(b.admits());

    // Probe failure reopens immediately, regardless of the threshold.
    EXPECT_TRUE(b.recordFailure());
    EXPECT_EQ(b.state, BreakerState::Open);

    b.onRestart();
    b.recordSuccess();
    EXPECT_EQ(b.state, BreakerState::Closed);
}

TEST(CircuitBreakerTable, ForceOpenReportsTransitionOnce)
{
    CircuitBreaker b;
    EXPECT_TRUE(b.forceOpen());
    EXPECT_FALSE(b.forceOpen());
    EXPECT_FALSE(b.admits());
}

// --- restart backoff ------------------------------------------------

TEST(RestartBackoff, DeterministicCappedAndGrowing)
{
    FleetConfig c;
    c.restart_backoff_base_ms = 100;
    c.restart_backoff_cap_ms = 5000;

    for (int restarts = 0; restarts < 20; ++restarts) {
        int ms = restartBackoffMs(c, 1, restarts);
        EXPECT_EQ(ms, restartBackoffMs(c, 1, restarts)); // deterministic
        // Jitter spans the upper half of the capped window.
        long long window =
            std::min<long long>(100ll << std::min(restarts, 16), 5000);
        EXPECT_GE(ms, static_cast<int>(window / 2));
        EXPECT_LE(ms, static_cast<int>(window));
    }
    // The schedule grows past the base well before the cap.
    EXPECT_GT(restartBackoffMs(c, 0, 6), restartBackoffMs(c, 0, 0));
    // Shards jitter differently: not every index picks the same delay.
    bool differs = false;
    for (int i = 1; i < 8 && !differs; ++i)
        differs = restartBackoffMs(c, i, 3) != restartBackoffMs(c, 0, 3);
    EXPECT_TRUE(differs);
}

// --- shard params round-trip ----------------------------------------

TEST(ShardParams, RoundTripsTheSimulationSubset)
{
    BenchParams p;
    p.width = 320;
    p.height = 180;
    p.frames = 2;
    p.warmup = 1;
    p.tile_jobs = 3;
    p.job_timeout_ms = 1234;
    p.log_level = LogLevel::Verbose;
    p.validation.mode = ValidateMode::Permissive;
    p.validation.tile_sample_rate = 0.5;
    p.validation.seed = 99;

    BenchParams q; // defaults
    ASSERT_TRUE(applyShardParams(shardParamsJson(p), q).ok());
    EXPECT_EQ(q.width, 320);
    EXPECT_EQ(q.height, 180);
    EXPECT_EQ(q.frames, 2);
    EXPECT_EQ(q.warmup, 1);
    EXPECT_EQ(q.tile_jobs, 3);
    EXPECT_EQ(q.job_timeout_ms, 1234);
    EXPECT_EQ(q.log_level, LogLevel::Verbose);
    EXPECT_EQ(q.validation.mode, ValidateMode::Permissive);
    EXPECT_DOUBLE_EQ(q.validation.tile_sample_rate, 0.5);
    EXPECT_EQ(q.validation.seed, 99u);

    Status bad = applyShardParams("{truncated", q);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.code(), ErrorCode::InvalidArgument);
}

TEST(ShardParams, ArgvProbeFindsIndexAndParams)
{
    std::string params_json;
    const char *argv_shard[] = {"evrsim-daemon", "--evrsim-shard=5",
                                "--evrsim-shard-params={\"width\":64}"};
    EXPECT_EQ(shardFlagFromArgv(3, const_cast<char **>(argv_shard),
                                params_json),
              5);
    EXPECT_EQ(params_json, "{\"width\":64}");

    const char *argv_plain[] = {"evrsim-daemon"};
    EXPECT_EQ(shardFlagFromArgv(1, const_cast<char **>(argv_plain),
                                params_json),
              -1);
    EXPECT_TRUE(params_json.empty());
}

// --- whole-fleet-dead degradation -----------------------------------

TEST(FleetDegradation, AllShardsUnspawnableFallsBackInProcess)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "fork + threads under sanitizers is not supported";
#endif
    metricsReset();
    FleetConfig cfg;
    cfg.shards = 2;
    // An exec target that cannot exist: every spawn "succeeds" at
    // fork, then the child dies on exec; the breaker opens and runs
    // degrade while the monitor keeps rescheduling restarts.
    cfg.shard_argv = {"/nonexistent/evrsim-shard"};
    cfg.ping_interval_ms = 50;
    cfg.ping_deadline_ms = 200;
    cfg.run_deadline_ms = 300;
    cfg.restart_backoff_base_ms = 2000; // stay dead for the test
    cfg.restart_backoff_cap_ms = 4000;
    cfg.poll_ms = 20;

    int degraded_calls = 0;
    ShardFleet fleet(cfg, [&](const std::string &alias,
                              const SimConfig &) -> Result<RunResult> {
        ++degraded_calls;
        return Status::internal("fallback reached for " + alias);
    });
    ASSERT_TRUE(fleet.start().ok());

    GpuConfig gpu;
    SimConfig config = configByName("baseline", gpu).value();
    WorkerAttempt a = fleet.execute("wl", config, "wl/baseline.json");

    // The degraded fallback's verdict came back verbatim.
    EXPECT_EQ(degraded_calls, 1);
    EXPECT_FALSE(a.worker_died);
    ASSERT_FALSE(a.status.ok());
    EXPECT_NE(a.status.message().find("fallback reached"),
              std::string::npos);

    ShardFleet::Stats st = fleet.stats();
    EXPECT_EQ(st.dispatched, 1u);
    EXPECT_EQ(st.degraded, 1u);
    EXPECT_EQ(st.completed, 1u);

    fleet.stop();
}

TEST(FleetConfigGate, DisabledWithoutWidthOrArgv)
{
    FleetConfig off;
    EXPECT_FALSE(fleetEnabled(off));
    off.shards = 2;
    EXPECT_FALSE(fleetEnabled(off)); // no argv
    off.shard_argv = {"/bin/true"};
    EXPECT_TRUE(fleetEnabled(off));

    ShardFleet fleet(FleetConfig{}, nullptr);
    EXPECT_EQ(fleet.start().code(), ErrorCode::InvalidArgument);
}

} // namespace
} // namespace evrsim
