/**
 * @file
 * The central correctness property of the paper ("the proposed
 * optimization does not produce any rendering errors"): for ANY scene
 * sequence, the framebuffer produced under Rendering Elimination, EVR
 * reordering, EVR signature filtering — and all combinations — must be
 * bit-identical to the baseline GPU's after every frame.
 *
 * Randomized animated scenes are generated with every feature the
 * pipeline supports (WOZ/NWOZ, translucency, discard shaders, textures,
 * appearing/disappearing commands, moving and color-animated elements)
 * and rendered under all configurations in lockstep.
 */
#include <gtest/gtest.h>

#include <memory>

#include "scene/animation.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

constexpr int kW = 96;
constexpr int kH = 64;

/** One randomized scene element. */
struct Element {
    enum class Kind {
        WozOpaque,
        WozDiscard,
        NwozOpaque,
        NwozTranslucent,
        Translucent3D, // depth-tested, no write
    };

    Kind kind;
    float x, y, w, h;
    float depth;
    Vec4 tint;
    float move_amp;    // pixels of oscillation (0 = static)
    float move_period;
    float phase;
    bool tint_animates;
    int appear_from;   // first frame the element exists
    int disappear_at;  // frame it stops existing (-1 = never)
    int texture;       // -1 = flat
};

/** Deterministic randomized animated scene sequence. */
class RandomScenes
{
  public:
    RandomScenes(std::uint64_t seed, bool full_cover_popup)
        : popup_(full_cover_popup)
    {
        Rng rng(seed);
        quad_ = meshes::quad({1, 1, 1, 1});
        texture_ = std::make_unique<Texture>(
            TextureKind::Checker, 32, Vec4{1, 1, 1, 1},
            Vec4{0.3f, 0.3f, 0.3f, 1.0f}, seed, 4);
        alpha_texture_ = std::make_unique<Texture>(
            TextureKind::Checker, 32, Vec4{1, 1, 1, 1},
            Vec4{1, 1, 1, 0.0f}, seed ^ 1, 8);

        int n = 6 + static_cast<int>(rng.nextBelow(10));
        for (int i = 0; i < n; ++i) {
            Element e;
            auto kind_roll = rng.nextBelow(10);
            if (kind_roll < 4)
                e.kind = Element::Kind::WozOpaque;
            else if (kind_roll < 5)
                e.kind = Element::Kind::WozDiscard;
            else if (kind_roll < 8)
                e.kind = Element::Kind::NwozOpaque;
            else if (kind_roll < 9)
                e.kind = Element::Kind::NwozTranslucent;
            else
                e.kind = Element::Kind::Translucent3D;

            e.w = rng.nextFloat(8, 70);
            e.h = rng.nextFloat(8, 50);
            e.x = rng.nextFloat(-10, kW - 10);
            e.y = rng.nextFloat(-10, kH - 10);
            // Distinct depths per element avoid z-fighting ties, which
            // no real application relies on either.
            e.depth = 0.05f + 0.9f * ((i * 37 + 11) % 101) / 101.0f;
            e.tint = {rng.nextFloat(0.2f, 1.0f), rng.nextFloat(0.2f, 1.0f),
                      rng.nextFloat(0.2f, 1.0f), 1.0f};
            if (e.kind == Element::Kind::NwozTranslucent ||
                e.kind == Element::Kind::Translucent3D)
                e.tint.w = rng.nextFloat(0.2f, 0.8f);
            e.move_amp = rng.nextBool(0.4f) ? rng.nextFloat(2, 20) : 0.0f;
            e.move_period = rng.nextFloat(5, 40);
            e.phase = rng.nextFloat(0, 6.28f);
            e.tint_animates = rng.nextBool(0.25f);
            e.appear_from =
                rng.nextBool(0.2f) ? static_cast<int>(rng.nextBelow(4)) : 0;
            e.disappear_at =
                rng.nextBool(0.2f) ? 3 + static_cast<int>(rng.nextBelow(4))
                                   : -1;
            e.texture = rng.nextBool(0.3f) ? 0 : -1;
            elements_.push_back(e);
        }
    }

    void
    upload(GpuSimulator &sim)
    {
        sim.uploadMesh(quad_);
        sim.registerTexture(*texture_);
        sim.registerTexture(*alpha_texture_);
    }

    Scene
    frame(int i) const
    {
        Scene scene;
        setCamera2D(scene, kW, kH);
        scene.textures.push_back(texture_.get());
        scene.textures.push_back(alpha_texture_.get());

        for (const Element &e : elements_) {
            if (i < e.appear_from)
                continue;
            if (e.disappear_at >= 0 && i >= e.disappear_at)
                continue;

            float x = e.x;
            float y = e.y;
            if (e.move_amp > 0) {
                x = anim::oscillate(e.x, e.move_amp, e.move_period, i,
                                    e.phase);
                y = anim::oscillate(e.y, e.move_amp * 0.7f,
                                    e.move_period * 1.3f, i, e.phase * 2);
            }

            RenderState rs;
            switch (e.kind) {
              case Element::Kind::WozOpaque:
                rs.depth_test = true;
                rs.depth_write = true;
                break;
              case Element::Kind::WozDiscard:
                rs.depth_test = true;
                rs.depth_write = true;
                rs.program = FragmentProgram::TexturedDiscard;
                rs.texture = 1;
                break;
              case Element::Kind::NwozOpaque:
                rs.depth_test = false;
                rs.depth_write = false;
                break;
              case Element::Kind::NwozTranslucent:
                rs.depth_test = false;
                rs.depth_write = false;
                rs.blend = BlendMode::Alpha;
                break;
              case Element::Kind::Translucent3D:
                rs.depth_test = true;
                rs.depth_write = false;
                rs.blend = BlendMode::Alpha;
                break;
            }
            if (rs.program != FragmentProgram::TexturedDiscard &&
                e.texture >= 0) {
                rs.program = FragmentProgram::TexturedTint;
                rs.texture = e.texture;
            }

            DrawCommand &cmd = submitRect(scene, &quad_, x, y, e.w, e.h,
                                          e.depth, rs);
            cmd.tint = e.tint;
            if (e.tint_animates)
                cmd.tint.x = clampf(
                    0.3f + 0.07f * static_cast<float>(i % 10), 0.0f, 1.0f);
        }

        if (popup_ && (i / 3) % 2 == 1) {
            // A full-screen opaque cover toggling every 3 frames: the
            // aggressive case for EVR's signature filtering.
            RenderState rs;
            rs.depth_test = false;
            rs.depth_write = false;
            DrawCommand &cmd =
                submitRect(scene, &quad_, -1, -1, kW + 2, kH + 2, 0.01f, rs);
            cmd.tint = {0.4f, 0.4f, 0.45f, 1.0f};
        }
        return scene;
    }

  private:
    bool popup_;
    mutable Mesh quad_;
    std::unique_ptr<Texture> texture_;
    std::unique_ptr<Texture> alpha_texture_;
    std::vector<Element> elements_;
};

/** All technique configurations that must match the baseline exactly. */
std::vector<SimConfig>
allConfigs()
{
    GpuConfig gpu = tinyGpu(kW, kH);
    return {
        SimConfig::baseline(gpu),
        SimConfig::renderingElimination(gpu),
        SimConfig::evrReorderOnly(gpu),
        SimConfig::evrFilterOnly(gpu),
        SimConfig::evr(gpu),
        SimConfig::zPrepass(gpu),
    };
}

} // namespace

class OutputIdentityProperty
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(OutputIdentityProperty, AllConfigsProduceBaselineOutput)
{
    auto [seed, popup] = GetParam();

    std::vector<std::unique_ptr<GpuSimulator>> sims;
    std::vector<std::unique_ptr<RandomScenes>> scenes;
    for (const SimConfig &cfg : allConfigs()) {
        sims.push_back(std::make_unique<GpuSimulator>(cfg));
        scenes.push_back(std::make_unique<RandomScenes>(
            static_cast<std::uint64_t>(seed) * 7793 + 5, popup));
        scenes.back()->upload(*sims.back());
    }

    for (int frame = 0; frame < 8; ++frame) {
        for (std::size_t c = 0; c < sims.size(); ++c)
            sims[c]->renderFrame(scenes[c]->frame(frame));
        for (std::size_t c = 1; c < sims.size(); ++c) {
            ASSERT_TRUE(
                sims[c]->framebuffer().equals(sims[0]->framebuffer()))
                << "config " << sims[c]->config().name << " diverged at"
                << " frame " << frame << " (seed " << seed << ", popup "
                << popup << "), " << std::dec
                << sims[c]->framebuffer().diffCount(sims[0]->framebuffer())
                << " pixels differ";
        }
    }

    // Sanity: the techniques actually did something on these scenes
    // (otherwise the property is vacuous). Across all seeds at least
    // the EVR run must have made predictions.
    EXPECT_GT(sims[4]->totals().fvp_table_accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomScenes, OutputIdentityProperty,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Bool()));

/** Rendering with EVR from a cold start mid-sequence is also exact:
 *  joining at any frame produces the same image as the baseline's
 *  incremental state from that frame on. */
TEST(OutputIdentity, ColdStartMidSequenceConverges)
{
    RandomScenes gen(4242, true);

    GpuSimulator base(SimConfig::baseline(tinyGpu(kW, kH)));
    RandomScenes gen_base(4242, true);
    gen_base.upload(base);

    for (int i = 0; i < 4; ++i)
        base.renderFrame(gen_base.frame(i));

    // A fresh EVR simulator starting at frame 4 must match from its
    // first rendered frame (no stale reuse is possible: its signature
    // buffer is cold, so nothing is skipped until it has valid state).
    GpuSimulator evr(SimConfig::evr(tinyGpu(kW, kH)));
    gen.upload(evr);
    for (int i = 4; i < 8; ++i) {
        base.renderFrame(gen_base.frame(i));
        evr.renderFrame(gen.frame(i));
        ASSERT_TRUE(evr.framebuffer().equals(base.framebuffer()))
            << "frame " << i;
    }
}

/** The EVR reorder must never *increase* shaded fragments once warmed
 *  up, relative to baseline, on opaque-WOZ-only scenes. */
class ReorderNeverHurtsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ReorderNeverHurtsProperty, ShadedFragmentsDoNotIncrease)
{
    Rng rng(GetParam() * 1237 + 3);
    // Static stack of opaque WOZ quads with random sizes and depths.
    Mesh quad = meshes::quad({1, 1, 1, 1});

    struct Box {
        float x, y, w, h, depth;
    };
    std::vector<Box> boxes;
    int n = 4 + static_cast<int>(rng.nextBelow(8));
    for (int i = 0; i < n; ++i) {
        boxes.push_back({rng.nextFloat(0, kW - 20), rng.nextFloat(0, kH - 20),
                         rng.nextFloat(10, 60), rng.nextFloat(10, 40),
                         0.1f + 0.8f * ((i * 29 + 7) % 53) / 53.0f});
    }

    auto build = [&](Mesh *q) {
        Scene s;
        setCamera2D(s, kW, kH);
        RenderState rs; // WOZ opaque default
        for (const Box &b : boxes)
            submitRect(s, q, b.x, b.y, b.w, b.h, b.depth, rs);
        return s;
    };

    GpuSimulator base(SimConfig::baseline(tinyGpu(kW, kH)));
    Mesh q1 = meshes::quad({1, 1, 1, 1});
    base.uploadMesh(q1);
    FrameStats base_frame = base.renderFrame(build(&q1));

    GpuSimulator evr(SimConfig::evrReorderOnly(tinyGpu(kW, kH)));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    evr.uploadMesh(q2);
    evr.renderFrame(build(&q2)); // warm-up: fills the FVP table
    FrameStats warm = evr.renderFrame(build(&q2));

    EXPECT_LE(warm.fragments_shaded, base_frame.fragments_shaded);
    EXPECT_TRUE(evr.framebuffer().equals(base.framebuffer()));
}

INSTANTIATE_TEST_SUITE_P(RandomStacks, ReorderNeverHurtsProperty,
                         ::testing::Range(0, 16));

/** Regression for the visible-misprediction hazard found on the `ata`
 *  workload: a moving WOZ primitive sits marginally beyond the previous
 *  frame's Z_far (so it is excluded from the signature) yet is actually
 *  visible because its own previous position had lowered Z_far. When it
 *  leaves the tile, the signatures of the two frames match even though
 *  the pixels changed; the mispredict-poisoning must force a render. */
TEST(OutputIdentity, ExcludedButVisibleMoverLeavingTile)
{
    auto frame_fn = [](Mesh *quad, int i) {
        Scene s;
        setCamera2D(s, kW, kH);
        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;
        // Terrain-like backdrop with depth 0.90 covering everything.
        submitRect(s, quad, -1, -1, kW + 2, kH + 2, 0.90f, woz).tint = {
            0.2f, 0.6f, 0.2f, 1.0f};
        // A mover at depth 0.895 — slightly *nearer* than the backdrop,
        // so it is visible wherever it is, but farther than the Z_far
        // its own previous position produces. It walks right and exits
        // the first tile after a few frames.
        float x = 2.0f + 6.0f * i;
        submitRect(s, quad, x, 2, 10, 10, 0.895f, woz).tint = {1, 0, 0, 1};
        return s;
    };

    GpuSimulator base(SimConfig::baseline(tinyGpu(kW, kH)));
    Mesh q1 = meshes::quad({1, 1, 1, 1});
    base.uploadMesh(q1);

    GpuSimulator filt(SimConfig::evrFilterOnly(tinyGpu(kW, kH)));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    filt.uploadMesh(q2);

    for (int i = 0; i < 12; ++i) {
        base.renderFrame(frame_fn(&q1, i));
        filt.renderFrame(frame_fn(&q2, i));
        ASSERT_TRUE(filt.framebuffer().equals(base.framebuffer()))
            << "frame " << i << ": "
            << filt.framebuffer().diffCount(base.framebuffer())
            << " pixels differ";
    }
}
