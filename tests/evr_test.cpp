/**
 * @file
 * Tests for Early Visibility Resolution: the Layer Generator Table
 * rules, the FVP Table prediction rules (section III.C), the Layer
 * Buffer + ZR FVP-type resolution (Figure 3's two scenarios), Algorithm
 * 1 reordering (Figure 4's example), and the end-to-end behaviours the
 * paper claims — overshading reduction, RE improvement under hidden
 * motion, and scenario C/D safety from Table I.
 */
#include <gtest/gtest.h>

#include "evr/evr.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

// ------------------------------------------------ LayerGeneratorTable --

TEST(LayerGeneratorTable, FirstCommandOpensLayerOne)
{
    LayerGeneratorTable lgt(4);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, false), 1u);
    LayerGeneratorTable lgt2(4);
    lgt2.frameStart();
    EXPECT_EQ(lgt2.assign(0, 0, true), 1u);
}

TEST(LayerGeneratorTable, SameCommandSameLayer)
{
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 5, false), 1u);
    EXPECT_EQ(lgt.assign(0, 5, false), 1u);
    EXPECT_EQ(lgt.assign(0, 5, false), 1u);
}

TEST(LayerGeneratorTable, NwozCommandsAlwaysIncrement)
{
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, false), 1u);
    EXPECT_EQ(lgt.assign(0, 1, false), 2u);
    EXPECT_EQ(lgt.assign(0, 2, false), 3u);
}

TEST(LayerGeneratorTable, ConsecutiveWozBatchesShareLayer)
{
    // Visibility among WOZ batches is resolved by depth, so a WOZ batch
    // following another WOZ batch reuses its layer.
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, true), 1u);
    EXPECT_EQ(lgt.assign(0, 1, true), 1u);
    EXPECT_EQ(lgt.assign(0, 2, true), 1u);
}

TEST(LayerGeneratorTable, WozAfterNwozIncrements)
{
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, false), 1u); // NWOZ background
    EXPECT_EQ(lgt.assign(0, 1, true), 2u);  // WOZ scene
    EXPECT_EQ(lgt.assign(0, 2, true), 2u);  // more WOZ: same layer
    EXPECT_EQ(lgt.assign(0, 3, false), 3u); // NWOZ HUD
    EXPECT_EQ(lgt.assign(0, 4, true), 4u);  // WOZ after the HUD
}

TEST(LayerGeneratorTable, MixedTypesWithinInterleavedCommands)
{
    // A WOZ command interleaved between two uses of an NWOZ command id
    // still tracks the *last* primitive type per tile.
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, true), 1u);
    EXPECT_EQ(lgt.assign(0, 0, false), 1u); // same command: same layer
    // Next WOZ command sees last_type = NWOZ -> increments.
    EXPECT_EQ(lgt.assign(0, 1, true), 2u);
}

TEST(LayerGeneratorTable, TilesAreIndependent)
{
    LayerGeneratorTable lgt(2);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, false), 1u);
    EXPECT_EQ(lgt.assign(0, 1, false), 2u);
    // Tile 1 only sees command 1: its counter is at 1.
    EXPECT_EQ(lgt.assign(1, 1, false), 1u);
}

TEST(LayerGeneratorTable, FrameStartResetsCounters)
{
    LayerGeneratorTable lgt(1);
    lgt.frameStart();
    lgt.assign(0, 0, false);
    lgt.assign(0, 1, false);
    lgt.frameStart();
    EXPECT_EQ(lgt.assign(0, 0, false), 1u);
}

// ------------------------------------------------------------ FvpTable --

TEST(FvpTable, InvalidEntryPredictsVisible)
{
    FvpTable fvp(2);
    EXPECT_FALSE(fvp.predictOccluded(0, true, 0.99f, 1));
    EXPECT_FALSE(fvp.predictOccluded(0, false, 0.99f, 1));
}

TEST(FvpTable, NwozRuleComparesLayers)
{
    FvpTable fvp(1);
    fvp.storeNwoz(0, 3);
    // Strictly lower layer: under an opaque cover -> occluded.
    EXPECT_TRUE(fvp.predictOccluded(0, false, 0.5f, 2));
    EXPECT_TRUE(fvp.predictOccluded(0, true, 0.5f, 1));
    // Equal or higher: visible.
    EXPECT_FALSE(fvp.predictOccluded(0, false, 0.5f, 3));
    EXPECT_FALSE(fvp.predictOccluded(0, false, 0.5f, 4));
}

TEST(FvpTable, WozRuleComparesDepths)
{
    FvpTable fvp(1);
    fvp.storeWoz(0, 0.6f);
    // Farther than Z_far and depth-comparable -> occluded.
    EXPECT_TRUE(fvp.predictOccluded(0, true, 0.7f, 5));
    // Nearer or equal -> visible.
    EXPECT_FALSE(fvp.predictOccluded(0, true, 0.6f, 5));
    EXPECT_FALSE(fvp.predictOccluded(0, true, 0.2f, 5));
    // NWOZ primitives cannot be compared against a depth FVP.
    EXPECT_FALSE(fvp.predictOccluded(0, false, 0.9f, 5));
}

TEST(FvpTable, ResetInvalidatesEverything)
{
    FvpTable fvp(2);
    fvp.storeNwoz(0, 5);
    fvp.storeWoz(1, 0.5f);
    fvp.reset();
    EXPECT_FALSE(fvp.valid(0));
    EXPECT_FALSE(fvp.predictOccluded(0, false, 0.0f, 1));
    EXPECT_FALSE(fvp.predictOccluded(1, true, 1.0f, 1));
}

TEST(FvpTable, StoreOverwritesTypeAndValue)
{
    FvpTable fvp(1);
    fvp.storeNwoz(0, 4);
    EXPECT_FALSE(fvp.isWozType(0));
    fvp.storeWoz(0, 0.25f);
    EXPECT_TRUE(fvp.isWozType(0));
    EXPECT_FLOAT_EQ(fvp.zFar(0), 0.25f);
}

// --------------------------------------------------------- LayerBuffer --

TEST(LayerBuffer, StartsAtZeroWithNoZr)
{
    LayerBuffer lb(16);
    lb.tileStart(4, 4);
    EXPECT_EQ(lb.computeLFar(), 0u);
    EXPECT_EQ(lb.zr(), LayerBuffer::kNoZr);
}

TEST(LayerBuffer, OpaqueWritesTrackVisibleLayer)
{
    LayerBuffer lb(16);
    lb.tileStart(2, 2);
    lb.opaqueWrite(0, 0, 1, false);
    lb.opaqueWrite(1, 0, 1, false);
    lb.opaqueWrite(0, 1, 1, false);
    lb.opaqueWrite(1, 1, 1, false);
    lb.opaqueWrite(0, 0, 3, false); // overwritten by a later layer
    EXPECT_EQ(lb.layerAt(0, 0), 3u);
    EXPECT_EQ(lb.computeLFar(), 1u);
}

TEST(LayerBuffer, UncoveredPixelPinsLFarToZero)
{
    LayerBuffer lb(16);
    lb.tileStart(2, 2);
    lb.opaqueWrite(0, 0, 5, false);
    lb.opaqueWrite(1, 0, 5, false);
    lb.opaqueWrite(0, 1, 5, false);
    // (1,1) never written: conservative L_far = 0.
    EXPECT_EQ(lb.computeLFar(), 0u);
}

TEST(LayerBuffer, ZrLatchesOnlyWozWrites)
{
    LayerBuffer lb(16);
    lb.tileStart(2, 1);
    lb.opaqueWrite(0, 0, 2, false);
    EXPECT_EQ(lb.zr(), LayerBuffer::kNoZr);
    lb.opaqueWrite(1, 0, 3, true);
    EXPECT_EQ(lb.zr(), 3u);
    lb.opaqueWrite(0, 0, 4, false);
    EXPECT_EQ(lb.zr(), 3u); // NWOZ writes do not touch ZR
}

// ------------------------------------- Figure 3: FVP-type resolution --

namespace {

/** Drive the raster-side tracker directly over a tiny "tile". */
class FvpResolution : public ::testing::Test
{
  protected:
    FvpResolution() : evr(1, 4) {}

    EarlyVisibilityResolution evr;
    FrameStats stats;
};

} // namespace

TEST_F(FvpResolution, Figure3aNwozFvp)
{
    // 4-pixel tile. Layer 1 fully covered by layer 2; layer 2 covered
    // by layers 3 (pixels 0-2) and 4 (pixel 3). All NWOZ. The farthest
    // visible layer is 3 and it is NWOZ, so FVP = L_far = 3.
    evr.tileStart(0, 4, 1, stats);
    for (int x = 0; x < 4; ++x)
        evr.onOpaqueWrite(0, x, 0, 1, false, stats);
    for (int x = 0; x < 4; ++x)
        evr.onOpaqueWrite(0, x, 0, 2, false, stats);
    for (int x = 0; x < 3; ++x)
        evr.onOpaqueWrite(0, x, 0, 3, false, stats);
    evr.onOpaqueWrite(0, 3, 0, 4, false, stats);

    const float depth[4] = {1, 1, 1, 1}; // Z Buffer untouched by NWOZ
    evr.tileEnd(0, depth, 4, stats);

    EXPECT_TRUE(evr.fvpTable().valid(0));
    EXPECT_FALSE(evr.fvpTable().isWozType(0));
    EXPECT_EQ(evr.fvpTable().lFar(0), 3u);
}

TEST_F(FvpResolution, Figure3bWozFvp)
{
    // Layer 1 is a WOZ batch whose visible depths end up {0, 0.5}; a
    // later NWOZ layer 2 covers pixel 0 only. L_far = 1 belongs to the
    // WOZ batch (ZR == L_far), so the FVP is Z_far = 0.5.
    evr.tileStart(0, 2, 1, stats);
    evr.onOpaqueWrite(0, 0, 0, 1, true, stats); // z = 1.0 first...
    evr.onOpaqueWrite(0, 0, 0, 1, true, stats); // ...then z = 0 wins
    evr.onOpaqueWrite(0, 1, 0, 1, true, stats); // z = 0.5
    evr.onOpaqueWrite(0, 0, 0, 2, false, stats); // NWOZ cover on pixel 0

    const float depth[2] = {0.0f, 0.5f};
    evr.tileEnd(0, depth, 2, stats);

    EXPECT_TRUE(evr.fvpTable().isWozType(0));
    EXPECT_FLOAT_EQ(evr.fvpTable().zFar(0), 0.5f);
}

TEST_F(FvpResolution, NwozOnTopMakesFvpNwozEvenWithWozBelow)
{
    // WOZ batch covered everywhere by a later NWOZ layer: L_far is the
    // NWOZ layer, ZR != L_far, so the FVP must be the layer.
    evr.tileStart(0, 2, 1, stats);
    evr.onOpaqueWrite(0, 0, 0, 1, true, stats);
    evr.onOpaqueWrite(0, 1, 0, 1, true, stats);
    evr.onOpaqueWrite(0, 0, 0, 2, false, stats);
    evr.onOpaqueWrite(0, 1, 0, 2, false, stats);

    const float depth[2] = {0.3f, 0.4f};
    evr.tileEnd(0, depth, 2, stats);
    EXPECT_FALSE(evr.fvpTable().isWozType(0));
    EXPECT_EQ(evr.fvpTable().lFar(0), 2u);
}

TEST_F(FvpResolution, SkippedTileKeepsPreviousEntry)
{
    evr.mutableFvpTable().storeNwoz(0, 7);
    evr.tileSkipped(0);
    EXPECT_TRUE(evr.fvpTable().valid(0));
    EXPECT_EQ(evr.fvpTable().lFar(0), 7u);
}

// ------------------------------------ Algorithm 1 (Figure 4) ordering --

namespace {

/** Feed primitives through onBin against a controlled FVP table. */
class Algorithm1 : public ::testing::Test
{
  protected:
    Algorithm1() : evr(1, 16)
    {
        evr.frameStart();
    }

    ShadedPrimitive
    prim(std::uint32_t cmd, bool woz, float z_near)
    {
        ShadedPrimitive p;
        p.cmd_id = cmd;
        p.state.depth_write = woz;
        p.state.depth_test = woz;
        p.state.blend = BlendMode::Opaque;
        p.z_near = z_near;
        p.v[0].depth = p.v[1].depth = p.v[2].depth = z_near;
        return p;
    }

    EarlyVisibilityResolution evr;
    FrameStats stats;
};

} // namespace

TEST_F(Algorithm1, Figure4Reordering)
{
    // FVP of the previous frame: a WOZ depth of 0.5.
    evr.mutableFvpTable().storeWoz(0, 0.5f);

    // Batch 1: NWOZ (2 prims) -> first list.
    BinDecision d1 = evr.onBin(prim(0, false, 0.1f), 0, stats);
    BinDecision d2 = evr.onBin(prim(0, false, 0.1f), 0, stats);
    EXPECT_FALSE(d1.to_second_list);
    EXPECT_FALSE(d2.to_second_list);

    // Batch 2: WOZ with one predicted-visible (z 0.3) and one
    // predicted-occluded (z 0.7) primitive.
    BinDecision d3 = evr.onBin(prim(1, true, 0.3f), 0, stats);
    BinDecision d4 = evr.onBin(prim(1, true, 0.7f), 0, stats);
    EXPECT_FALSE(d3.predicted_occluded);
    EXPECT_FALSE(d3.to_second_list);
    EXPECT_TRUE(d4.predicted_occluded);
    EXPECT_TRUE(d4.to_second_list);

    // Batch 3: NWOZ -> must splice the second list back first.
    BinDecision d5 = evr.onBin(prim(2, false, 0.1f), 0, stats);
    EXPECT_TRUE(d5.move_second_to_first);
    EXPECT_FALSE(d5.to_second_list);

    // Batch 4: WOZ again; occluded prims go to the (new) second list.
    BinDecision d6 = evr.onBin(prim(3, true, 0.9f), 0, stats);
    EXPECT_TRUE(d6.to_second_list);
}

TEST_F(Algorithm1, ReorderingDisabledKeepsEverythingInOrder)
{
    EvrConfig cfg;
    cfg.reorder = false;
    EarlyVisibilityResolution no_reorder(1, 16, cfg);
    no_reorder.frameStart();
    no_reorder.mutableFvpTable().storeWoz(0, 0.5f);

    BinDecision d = no_reorder.onBin(prim(0, true, 0.9f), 0, stats);
    // Still predicted (for the RE filter) but never rescheduled.
    EXPECT_TRUE(d.predicted_occluded);
    EXPECT_FALSE(d.to_second_list);
    EXPECT_FALSE(d.move_second_to_first);
}

TEST_F(Algorithm1, TranslucentWozIsNeverReordered)
{
    evr.mutableFvpTable().storeWoz(0, 0.5f);
    ShadedPrimitive p = prim(0, true, 0.9f);
    p.state.blend = BlendMode::Alpha; // blending is order-dependent
    BinDecision d = evr.onBin(p, 0, stats);
    EXPECT_FALSE(d.to_second_list);
}

TEST_F(Algorithm1, DepthWriteWithoutTestIsNotDepthPredicted)
{
    evr.mutableFvpTable().storeWoz(0, 0.5f);
    ShadedPrimitive p = prim(0, true, 0.9f);
    p.state.depth_test = false; // draws unconditionally
    BinDecision d = evr.onBin(p, 0, stats);
    EXPECT_FALSE(d.predicted_occluded);
}

TEST_F(Algorithm1, LayerRulePredictsAnyPrimitiveType)
{
    evr.mutableFvpTable().storeNwoz(0, 3);
    // Layer 1 (first command) < L_far = 3: occluded, for both types.
    BinDecision woz = evr.onBin(prim(0, true, 0.2f), 0, stats);
    EXPECT_TRUE(woz.predicted_occluded);

    EarlyVisibilityResolution evr2(1, 16);
    evr2.frameStart();
    evr2.mutableFvpTable().storeNwoz(0, 3);
    BinDecision nwoz = evr2.onBin(prim(0, false, 0.2f), 0, stats);
    EXPECT_TRUE(nwoz.predicted_occluded);
}

// -------------------------------------------- End-to-end behaviours --

namespace {

RenderState
woz()
{
    RenderState s;
    s.depth_test = true;
    s.depth_write = true;
    return s;
}

RenderState
nwoz()
{
    RenderState s;
    s.depth_test = false;
    s.depth_write = false;
    return s;
}

/** Run the same frame function through two configs; return both sims. */
template <typename FrameFn>
void
runFrames(GpuSimulator &sim, Mesh &quad, FrameFn &&fn, int frames)
{
    (void)quad;
    for (int i = 0; i < frames; ++i)
        sim.renderFrame(fn(i));
}

} // namespace

TEST(EvrEndToEnd, ReorderEliminatesOvershadingFromSecondFrame)
{
    // Far-then-near opaque stack; static across frames.
    GpuSimulator sim(SimConfig::evrReorderOnly(tinyGpu()));
    Mesh quad = meshes::quad({1, 1, 1, 1});
    sim.uploadMesh(quad);

    auto frame = [&] {
        Scene s;
        setCamera2D(s, 64, 48);
        submitRect(s, &quad, 0, 0, 63, 47, 0.8f, woz()).tint = {0, 1, 0, 1};
        submitRect(s, &quad, 0, 0, 63, 47, 0.2f, woz()).tint = {1, 0, 0, 1};
        return s;
    };

    FrameStats f0 = sim.renderFrame(frame());
    // Frame 0: no FVP information yet -> behaves like baseline.
    EXPECT_EQ(f0.early_z_kills, 0u);
    std::uint64_t f0_shaded = f0.fragments_shaded;

    FrameStats f1 = sim.renderFrame(frame());
    // Frame 1: the far quad is predicted occluded, rendered last, and
    // killed by the Early-Z test.
    EXPECT_GT(f1.early_z_kills, 0u);
    EXPECT_LT(f1.fragments_shaded, f0_shaded);
    EXPECT_GT(f1.prims_predicted_occluded, 0u);
    EXPECT_EQ(f1.pred_occluded_wrong, 0u);
}

TEST(EvrEndToEnd, HiddenMotionUnderCoverSkipsWithEvrButNotRe)
{
    // The paper's key RE-improvement scenario: a sprite animates under
    // a static opaque cover. Plain RE sees a changing signature every
    // frame; EVR excludes the hidden sprite and skips the tile.
    auto frame_fn = [](Mesh *quad, int i) {
        Scene s;
        setCamera2D(s, 64, 48);
        // Static NWOZ background.
        submitRect(s, quad, 0, 0, 64, 48, 0.9f, nwoz()).tint = {0, 0, 1, 1};
        // Animated sprite (changes tint each frame).
        submitRect(s, quad, 4, 4, 8, 8, 0.5f, nwoz()).tint = {
            0.2f + 0.05f * (i % 10), 0, 0, 1};
        // Full-screen opaque NWOZ cover (a menu).
        submitRect(s, quad, 0, 0, 64, 48, 0.1f, nwoz()).tint = {
            0.3f, 0.3f, 0.3f, 1};
        return s;
    };

    GpuSimulator re_sim(SimConfig::renderingElimination(tinyGpu()));
    Mesh q1 = meshes::quad({1, 1, 1, 1});
    re_sim.uploadMesh(q1);

    GpuSimulator evr_sim(SimConfig::evr(tinyGpu()));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    evr_sim.uploadMesh(q2);

    FrameStats re_last, evr_last;
    for (int i = 0; i < 4; ++i) {
        re_last = re_sim.renderFrame(frame_fn(&q1, i));
        evr_last = evr_sim.renderFrame(frame_fn(&q2, i));
    }

    // RE cannot skip the sprite's tile; EVR skips all 12 tiles.
    EXPECT_LT(re_last.tiles_skipped_re, 12u);
    EXPECT_EQ(evr_last.tiles_skipped_re, 12u);
    // And the displayed image is identical.
    EXPECT_TRUE(evr_sim.framebuffer().equals(re_sim.framebuffer()));
}

TEST(EvrEndToEnd, HiddenWozMotionBehindNearWallSkips)
{
    // WOZ variant: a near wall (z=0.2) covers a moving far object
    // (z=0.8). The FVP is a Z value; the far object's z_near exceeds it.
    auto frame_fn = [](Mesh *quad, int i) {
        Scene s;
        setCamera2D(s, 64, 48);
        submitRect(s, quad, static_cast<float>(8 + (i % 5)), 8, 10, 10,
                   0.8f, woz())
            .tint = {1, 0, 0, 1};
        submitRect(s, quad, 0, 0, 64, 48, 0.2f, woz()).tint = {0, 1, 0, 1};
        return s;
    };

    GpuSimulator evr_sim(SimConfig::evr(tinyGpu()));
    Mesh q = meshes::quad({1, 1, 1, 1});
    evr_sim.uploadMesh(q);

    GpuSimulator re_sim(SimConfig::renderingElimination(tinyGpu()));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    re_sim.uploadMesh(q2);

    FrameStats evr_last, re_last;
    for (int i = 0; i < 4; ++i) {
        evr_last = evr_sim.renderFrame(frame_fn(&q, i));
        re_last = re_sim.renderFrame(frame_fn(&q2, i));
    }
    EXPECT_EQ(evr_last.tiles_skipped_re, 12u);
    EXPECT_LT(re_last.tiles_skipped_re, 12u);
    EXPECT_TRUE(evr_sim.framebuffer().equals(re_sim.framebuffer()));
}

TEST(EvrEndToEnd, ScenarioDOccluderRemovalRerendersCorrectly)
{
    // Table I scenario D: a primitive occluded in frame i becomes
    // visible in frame i+1 because its occluder disappears. The tile
    // must re-render (the occluder was part of the old signature) and
    // the image must match a baseline render.
    auto frame_fn = [](Mesh *quad, int i) {
        Scene s;
        setCamera2D(s, 64, 48);
        submitRect(s, quad, 0, 0, 64, 48, 0.9f, nwoz()).tint = {0, 0, 1, 1};
        submitRect(s, quad, 4, 4, 8, 8, 0.5f, nwoz()).tint = {1, 1, 0, 1};
        if (i < 3) { // cover disappears at frame 3
            submitRect(s, quad, 0, 0, 64, 48, 0.1f, nwoz()).tint = {
                0.3f, 0.3f, 0.3f, 1};
        }
        return s;
    };

    GpuSimulator evr_sim(SimConfig::evr(tinyGpu()));
    Mesh q = meshes::quad({1, 1, 1, 1});
    evr_sim.uploadMesh(q);

    GpuSimulator base_sim(SimConfig::baseline(tinyGpu()));
    Mesh q2 = meshes::quad({1, 1, 1, 1});
    base_sim.uploadMesh(q2);

    for (int i = 0; i < 5; ++i) {
        evr_sim.renderFrame(frame_fn(&q, i));
        base_sim.renderFrame(frame_fn(&q2, i));
        ASSERT_TRUE(evr_sim.framebuffer().equals(base_sim.framebuffer()))
            << "divergence at frame " << i;
    }
}

TEST(EvrEndToEnd, CasuistryScenarioCIsCounted)
{
    // The hidden animated sprite produces OccludedOccluded pairs once
    // the FVP is warm — but only on *rendered* tiles, so disable RE
    // (EVR-reorder-only) to keep the tile rendering.
    GpuSimulator sim(SimConfig::evrReorderOnly(tinyGpu()));
    Mesh q = meshes::quad({1, 1, 1, 1});
    sim.uploadMesh(q);

    auto frame_fn = [&](int i) {
        Scene s;
        setCamera2D(s, 64, 48);
        submitRect(s, &q, 0, 0, 64, 48, 0.9f, nwoz()).tint = {0, 0, 1, 1};
        submitRect(s, &q, 4, 4, 8, 8, 0.5f, nwoz()).tint = {
            0.2f + 0.05f * (i % 10), 0, 0, 1};
        submitRect(s, &q, 0, 0, 64, 48, 0.1f, nwoz()).tint = {0.3f, 0.3f,
                                                              0.3f, 1};
        return s;
    };

    sim.renderFrame(frame_fn(0));
    FrameStats s1 = sim.renderFrame(frame_fn(1));
    int c = static_cast<int>(Casuistry::OccludedOccluded);
    EXPECT_GT(s1.casuistry[c], 0u);
    EXPECT_EQ(s1.pred_occluded_wrong, 0u);
}

TEST(EvrEndToEnd, EvrStructureAccessesAreCounted)
{
    GpuSimulator sim(SimConfig::evr(tinyGpu()));
    Mesh q = meshes::quad({1, 1, 1, 1});
    sim.uploadMesh(q);
    Scene s;
    setCamera2D(s, 64, 48);
    submitRect(s, &q, 0, 0, 64, 48, 0.5f, woz());
    FrameStats f = sim.renderFrame(s);
    EXPECT_GT(f.lgt_accesses, 0u);
    EXPECT_GT(f.fvp_table_accesses, 0u);
    EXPECT_GT(f.layer_buffer_accesses, 0u);
    EXPECT_GT(f.layer_param_bytes, 0u);
    // One LGT access per (prim, tile) pair.
    EXPECT_EQ(f.lgt_accesses, f.bin_tile_pairs);
}
