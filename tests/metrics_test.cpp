/**
 * @file
 * Metrics registry tests: counter/gauge/histogram semantics, label
 * identity, sticky types, JSON output round-tripped through the driver
 * parser, the Prometheus exposition shape, and — end to end — that the
 * metrics.json a sweep exports agrees exactly with the runner's own
 * printed accounting (SweepStats) and the per-run simulation totals.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/metrics.hpp"
#include "driver/experiment.hpp"
#include "driver/json.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;

namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    void SetUp() override { metricsReset(); }
    void TearDown() override { metricsReset(); }
};

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Parse metricsToJson() output and index entries by (name, labels). */
std::map<std::string, Json>
indexMetrics(const Json &doc)
{
    std::map<std::string, Json> out;
    const Json &entries = doc.at("metrics");
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Json &e = entries.at(i);
        std::string key = e.at("name").asString();
        for (const auto &kv : e.at("labels").members())
            key += "|" + kv.first + "=" + kv.second.asString();
        out[key] = e;
    }
    return out;
}

} // namespace

TEST_F(MetricsTest, CountersAccumulateAndStayMonotone)
{
    metricsCounterAdd("runs", 2);
    metricsCounterAdd("runs", 3);
    metricsCounterAdd("runs", -7); // ignored: counters are monotone
    Result<double> v = metricsValue("runs");
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), 5);
}

TEST_F(MetricsTest, LabelsSeparateInstances)
{
    metricsCounterAdd("frames", 10, {{"workload", "ccs"}});
    metricsCounterAdd("frames", 20, {{"workload", "300"}});
    metricsCounterAdd("frames", 5, {{"workload", "ccs"}});
    EXPECT_EQ(metricsInstanceCount(), 2u);
    EXPECT_EQ(metricsValue("frames", {{"workload", "ccs"}}).value(), 15);
    EXPECT_EQ(metricsValue("frames", {{"workload", "300"}}).value(), 20);
    EXPECT_FALSE(metricsValue("frames").ok()); // no unlabeled instance
    EXPECT_FALSE(metricsValue("absent").ok());
}

TEST_F(MetricsTest, GaugesOverwrite)
{
    metricsGaugeSet("queue", 3);
    metricsGaugeSet("queue", 1);
    EXPECT_EQ(metricsValue("queue").value(), 1);
}

TEST_F(MetricsTest, HistogramBucketsCumulativeInPromPerBucketInJson)
{
    metricsHistogramDefine("wall", {1, 10});
    metricsHistogramObserve("wall", 0.5);
    metricsHistogramObserve("wall", 5);
    metricsHistogramObserve("wall", 50);
    metricsHistogramObserve("wall", 7);

    // metricsValue on a histogram reports the sum.
    EXPECT_EQ(metricsValue("wall").value(), 62.5);

    Result<Json> doc = Json::tryParse(metricsToJson());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    auto idx = indexMetrics(doc.value());
    const Json &e = idx.at("wall");
    EXPECT_EQ(e.at("type").asString(), "histogram");
    const Json &buckets = e.at("buckets");
    ASSERT_EQ(buckets.size(), 3u); // 2 bounds + overflow
    EXPECT_EQ(buckets.at(0).at("le").asDouble(), 1);
    EXPECT_EQ(buckets.at(0).at("count").asU64(), 1u); // 0.5
    EXPECT_EQ(buckets.at(1).at("le").asDouble(), 10);
    EXPECT_EQ(buckets.at(1).at("count").asU64(), 2u); // 5, 7
    EXPECT_EQ(buckets.at(2).at("le").asString(), "+Inf");
    EXPECT_EQ(buckets.at(2).at("count").asU64(), 1u); // 50
    EXPECT_EQ(e.at("sum").asDouble(), 62.5);
    EXPECT_EQ(e.at("count").asU64(), 4u);

    // Prometheus buckets are cumulative and end at +Inf == _count.
    std::string prom = metricsToProm();
    EXPECT_NE(prom.find("# TYPE wall histogram"), std::string::npos);
    EXPECT_NE(prom.find("wall_bucket{le=\"1\"} 1\n"), std::string::npos);
    EXPECT_NE(prom.find("wall_bucket{le=\"10\"} 3\n"), std::string::npos);
    EXPECT_NE(prom.find("wall_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(prom.find("wall_sum 62.5\n"), std::string::npos);
    EXPECT_NE(prom.find("wall_count 4\n"), std::string::npos);
}

TEST_F(MetricsTest, TypeConflictsAreCountedNotCorrupting)
{
    metricsCounterAdd("x", 1);
    metricsGaugeSet("x", 99);          // wrong kind: rejected
    metricsHistogramObserve("x", 3.0); // also rejected
    EXPECT_EQ(metricsValue("x").value(), 1);

    Result<Json> doc = Json::tryParse(metricsToJson());
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc.value().at("type_conflicts").asU64(), 2u);
}

TEST_F(MetricsTest, JsonRoundTripsSortedAndIntegral)
{
    metricsGaugeSet("b_gauge", 2.5);
    metricsCounterAdd("a_counter", 3, {{"cfg", "evr"}});
    metricsCounterAdd("a_counter", 1, {{"cfg", "baseline"}});

    std::string text = metricsToJson();
    Result<Json> doc = Json::tryParse(text);
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    EXPECT_EQ(doc.value().at("schema").asU64(), 1u);

    const Json &entries = doc.value().at("metrics");
    ASSERT_EQ(entries.size(), 3u);
    // Sorted by name, then by label key.
    EXPECT_EQ(entries.at(0).at("name").asString(), "a_counter");
    EXPECT_EQ(entries.at(0).at("labels").at("cfg").asString(),
              "baseline");
    EXPECT_EQ(entries.at(1).at("labels").at("cfg").asString(), "evr");
    EXPECT_EQ(entries.at(2).at("name").asString(), "b_gauge");
    EXPECT_EQ(entries.at(2).at("value").asDouble(), 2.5);
    // Integral values serialize without a decimal point, so totals
    // compare textually against the printed tables.
    EXPECT_NE(text.find("\"value\":3"), std::string::npos);
    EXPECT_EQ(text.find("\"value\":3.0"), std::string::npos);

    // Prometheus shape for plain counters/gauges.
    std::string prom = metricsToProm();
    EXPECT_NE(prom.find("# TYPE a_counter counter"), std::string::npos);
    EXPECT_NE(prom.find("a_counter{cfg=\"evr\"} 3\n"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE b_gauge gauge"), std::string::npos);
}

TEST_F(MetricsTest, EscapesHostileLabelValues)
{
    metricsCounterAdd("esc", 1, {{"path", "a\"b\\c\nd"}});
    Result<Json> doc = Json::tryParse(metricsToJson());
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    auto idx = indexMetrics(doc.value());
    ASSERT_EQ(idx.size(), 1u);
    EXPECT_EQ(idx.begin()->second.at("labels").at("path").asString(),
              "a\"b\\c\nd");
}

/**
 * End to end: a sweep with EVRSIM_METRICS-style recording exports a
 * metrics.json whose totals equal the runner's printed accounting.
 */
TEST_F(MetricsTest, SweepArtifactTotalsMatchSweepStats)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "evrsim_metrics_sweep";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    BenchParams params;
    params.width = 64;
    params.height = 48;
    params.frames = 2;
    params.warmup = 1;
    params.use_cache = false;
    params.jobs = 2;
    params.heartbeat_ms = 0;
    params.metrics_dir = dir.string();
    ExperimentRunner runner(workloads::factory(), params);

    std::vector<RunRequest> reqs;
    for (const char *alias : {"ccs", "300"}) {
        reqs.push_back({alias, SimConfig::baseline(params.gpuConfig())});
        reqs.push_back({alias, SimConfig::evr(params.gpuConfig())});
    }
    reqs.push_back({"ccs", SimConfig::evr(params.gpuConfig())}); // memo
    BatchOutcome outcome = runner.runAllChecked(reqs);
    ASSERT_TRUE(outcome.ok());
    ASSERT_TRUE(runner.writeMetricsArtifacts().ok());

    SweepStats stats = runner.sweepStats();
    EXPECT_EQ(stats.requested, reqs.size());
    EXPECT_EQ(stats.simulated, reqs.size() - 1);
    EXPECT_EQ(stats.memo_hits, 1u);

    Result<Json> doc = Json::tryParse(slurp(dir / "metrics.json"));
    ASSERT_TRUE(doc.ok()) << doc.status().toString();
    auto idx = indexMetrics(doc.value());

    // Sweep-level gauges mirror SweepStats exactly.
    EXPECT_EQ(idx.at("evrsim_sweep_requested").at("value").asU64(),
              stats.requested);
    EXPECT_EQ(idx.at("evrsim_sweep_simulated").at("value").asU64(),
              stats.simulated);
    EXPECT_EQ(idx.at("evrsim_sweep_memo_hits").at("value").asU64(),
              stats.memo_hits);
    EXPECT_EQ(
        idx.at("evrsim_sweep_frames_simulated").at("value").asU64(),
        stats.frames_simulated);
    EXPECT_EQ(idx.at("evrsim_sweep_failed").at("value").asU64(), 0u);

    // Per-run counters: summed over labels they reproduce the sweep
    // totals, and each instance matches its run's own totals.
    double frames = 0;
    for (const auto &kv : idx)
        if (kv.first.rfind("evrsim_frames_simulated_total|", 0) == 0)
            frames += kv.second.at("value").asDouble();
    EXPECT_EQ(frames, static_cast<double>(stats.frames_simulated));

    for (std::size_t i = 0; i < 4; ++i) { // the four distinct triples
        Result<double> energy = metricsValue(
            "evrsim_energy_total_nj",
            {{"workload", reqs[i].alias},
             {"config", reqs[i].config.name}});
        ASSERT_TRUE(energy.ok())
            << reqs[i].alias << "/" << reqs[i].config.name;
        EXPECT_NEAR(energy.value(), outcome.results[i].energy.total(),
                    1e-6 * outcome.results[i].energy.total());
    }

    // The Prometheus twin exists and mentions the same series.
    std::string prom = slurp(dir / "metrics.prom");
    EXPECT_NE(prom.find("# TYPE evrsim_sweep_requested gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE evrsim_sim_wall_ms histogram"),
              std::string::npos);
}
