/**
 * @file
 * Unit tests for the energy model: zero-event baselines, linearity in
 * event counts, the Figure 6 overhead grouping, and leakage gating.
 */
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

using namespace evrsim;

namespace {

EnergyEvents
emptyEvents()
{
    return EnergyEvents{};
}

} // namespace

TEST(Energy, NoEventsNoEnergy)
{
    EnergyModel model;
    EnergyBreakdown e = model.compute(emptyEvents());
    EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

TEST(Energy, StaticEnergyScalesWithCycles)
{
    EnergyModel model;
    EnergyEvents ev = emptyEvents();
    ev.cycles = 400; // 1 us at 400 MHz... scaled below
    double one = model.compute(ev).static_nj;
    ev.cycles = 800;
    double two = model.compute(ev).static_nj;
    EXPECT_GT(one, 0.0);
    EXPECT_DOUBLE_EQ(two, 2.0 * one);
}

TEST(Energy, StaticPowerValue)
{
    EnergyParams p;
    p.static_power_mw = 100.0;
    p.clock_mhz = 400.0;
    EnergyModel model(p);
    EnergyEvents ev = emptyEvents();
    ev.cycles = 400'000'000; // exactly one second
    // 100 mW for 1 s = 0.1 J = 1e8 nJ.
    EXPECT_NEAR(model.compute(ev).static_nj, 1e8, 1.0);
}

TEST(Energy, DramEnergyProportionalToBytes)
{
    EnergyParams p;
    p.dram_pj_per_byte = 100.0;
    EnergyModel model(p);
    EnergyEvents ev = emptyEvents();
    ev.mem.dram.read_bytes[0] = 1000;
    EXPECT_NEAR(model.compute(ev).dram_nj, 100.0, 1e-9);
    ev.mem.dram.write_bytes[2] = 1000;
    EXPECT_NEAR(model.compute(ev).dram_nj, 200.0, 1e-9);
}

TEST(Energy, DatapathCountsShaderInstructions)
{
    EnergyParams p;
    p.shader_instr_pj = 10.0;
    EnergyModel model(p);
    EnergyEvents ev = emptyEvents();
    ev.fragment_shader_instrs = 100;
    ev.vertex_shader_instrs = 50;
    EXPECT_NEAR(model.compute(ev).datapath_nj, 1.5, 1e-9);
}

TEST(Energy, OverheadGroupsAreSeparatedFromBaseline)
{
    EnergyModel model;
    EnergyEvents ev = emptyEvents();
    ev.lgt_accesses = 1000;
    ev.fvp_table_accesses = 1000;
    ev.layer_buffer_accesses = 1000;
    ev.signature_buffer_accesses = 1000;
    ev.signature_bytes_hashed = 10000;
    ev.layer_param_bytes = 5000;

    EnergyBreakdown e = model.compute(ev);
    EXPECT_GT(e.evr_hardware_nj, 0.0);
    EXPECT_GT(e.re_hardware_nj, 0.0);
    EXPECT_GT(e.layer_writes_nj, 0.0);
    EXPECT_DOUBLE_EQ(e.baselineComponents(), 0.0);
    EXPECT_DOUBLE_EQ(e.total(), e.evr_hardware_nj + e.re_hardware_nj +
                                    e.layer_writes_nj);
}

TEST(Energy, HardwarePresenceAddsLeakage)
{
    EnergyModel model;
    EnergyEvents ev = emptyEvents();
    ev.cycles = 1'000'000;
    double base = model.compute(ev).static_nj;

    ev.re_hardware_present = true;
    double with_re = model.compute(ev).static_nj;
    EXPECT_GT(with_re, base);

    ev.evr_hardware_present = true;
    double with_evr = model.compute(ev).static_nj;
    EXPECT_GT(with_evr, with_re);
}

TEST(Energy, CacheEnergyUsesPerLevelAccessCounts)
{
    EnergyParams p;
    p.vertex_cache_pj = 1.0;
    p.l2_cache_pj = 10.0;
    p.texture_cache_pj = 0.0;
    p.tile_cache_pj = 0.0;
    EnergyModel model(p);
    EnergyEvents ev = emptyEvents();
    ev.mem.vertex_cache.reads = 100;
    ev.mem.l2_cache.reads = 10;
    // 100 * 1 pJ + 10 * 10 pJ = 200 pJ = 0.2 nJ.
    EXPECT_NEAR(model.compute(ev).caches_nj, 0.2, 1e-9);
}

/** Linearity sweep: doubling all events doubles dynamic energy. */
class EnergyLinearity : public ::testing::TestWithParam<int>
{
};

TEST_P(EnergyLinearity, DynamicEnergyIsLinear)
{
    int k = GetParam();
    EnergyModel model;

    auto events_for = [&](std::uint64_t scale) {
        EnergyEvents ev = emptyEvents();
        ev.fragment_shader_instrs = 100 * scale * k;
        ev.raster_quads = 40 * scale * k;
        ev.depth_tests = 70 * scale * k;
        ev.blend_ops = 30 * scale * k;
        ev.color_buffer_accesses = 30 * scale * k;
        ev.mem.dram.read_bytes[0] = 512 * scale * k;
        ev.lgt_accesses = 9 * scale * k;
        return ev;
    };

    double one = model.compute(events_for(1)).total();
    double two = model.compute(events_for(2)).total();
    EXPECT_NEAR(two, 2.0 * one, 1e-9 * (1.0 + two));
}

INSTANTIATE_TEST_SUITE_P(Scales, EnergyLinearity, ::testing::Values(1, 3, 17));
