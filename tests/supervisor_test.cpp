/**
 * @file
 * Tests for the hard failure domain added around simulation jobs:
 * durable atomic file writes, the shared CRC32 envelope, the process
 * supervisor (crash / hang / OOM / exec-failure classification, status
 * transport), the runner's crash-quarantine policy, the corrupt-file
 * cap, and the write-ahead sweep journal with EVRSIM_RESUME replay.
 *
 * The test binary doubles as its own worker: `--supervisor-test-worker
 * <mode>` (dispatched before gtest initializes) makes the re-execed
 * copy crash, hang, exhaust its RLIMIT_AS budget, report a scripted
 * status, or actually simulate the tiny workload and frame the result
 * back — exactly the shape the bench binaries use in production.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/fault_injector.hpp"
#include "driver/envelope.hpp"
#include "driver/experiment.hpp"
#include "driver/supervisor.hpp"
#include "driver/sweep_journal.hpp"
#include "scene/mesh.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

/** A tiny deterministic workload; `alias` selects its look. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(std::string alias, int width, int height)
        : alias_(std::move(alias)), width_(width), height_(height)
    {
        quad_ = meshes::quad({1, 1, 1, 1});
    }

    Info
    info() const override
    {
        return {alias_, "Tiny " + alias_, "Test", false};
    }

    void setup(GpuSimulator &sim) override { sim.uploadMesh(quad_); }

    Scene
    frame(int index) override
    {
        float offset = alias_ == "tiny-a" ? 2.0f : 10.0f;
        Scene s;
        setCamera2D(s, width_, height_);
        DrawCommand &c = submitRect(s, &quad_, offset, offset, 20, 16,
                                    0.5f, RenderState{});
        c.tint = {0.4f + 0.1f * (index % 4), 0.3f, 0.2f, 1.0f};
        return s;
    }

  private:
    std::string alias_;
    int width_, height_;
    Mesh quad_;
};

WorkloadFactory
tinyFactory(std::atomic<int> *builds = nullptr)
{
    return [builds](const std::string &alias, int w,
                    int h) -> std::unique_ptr<Workload> {
        if (alias != "tiny-a" && alias != "tiny-b")
            return nullptr;
        if (builds)
            builds->fetch_add(1);
        return std::make_unique<TinyWorkload>(alias, w, h);
    };
}

BenchParams
tinyParams(const std::string &cache_dir = "")
{
    BenchParams p;
    p.width = 64;
    p.height = 48;
    p.frames = 3;
    p.warmup = 1;
    p.use_cache = !cache_dir.empty();
    p.cache_dir = cache_dir;
    p.jobs = 1;
    return p;
}

std::vector<RunRequest>
tinyBatch(const GpuConfig &gpu)
{
    std::vector<RunRequest> reqs;
    for (const char *alias : {"tiny-a", "tiny-b"}) {
        reqs.push_back({alias, SimConfig::baseline(gpu)});
        reqs.push_back({alias, SimConfig::renderingElimination(gpu)});
        reqs.push_back({alias, SimConfig::evr(gpu)});
    }
    return reqs;
}

std::filesystem::path
freshDir(const std::string &name)
{
    std::filesystem::path dir =
        std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** argv for re-execing this binary as a scripted worker. */
std::vector<std::string>
workerArgv(const std::string &mode)
{
    return {selfExecutablePath(), "--supervisor-test-worker", mode};
}

} // namespace

// ----------------------------------------------------- worker side -----

namespace {

[[noreturn]] int
runScriptedWorker(const std::string &mode)
{
    if (mode == "crash")
        std::raise(SIGSEGV);
    if (mode == "hang")
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(3600));
    if (mode == "oom") {
        // Allocate until the RLIMIT_AS budget bites: bad_alloc escapes
        // uncaught, terminate() raises SIGABRT, and the parent must
        // classify the death — no cooperation from the worker.
        std::vector<std::unique_ptr<std::vector<char>>> hog;
        for (;;)
            hog.push_back(
                std::make_unique<std::vector<char>>(8u << 20, 1));
    }
    if (mode == "status") {
        writeWorkerResponse(
            kWorkerResponseFd,
            Result<RunResult>(Status::invariantViolation(
                "seeded strict-validation failure")));
        std::exit(0);
    }
    if (mode == "run") {
        BenchParams p = tinyParams();
        ExperimentRunner runner(tinyFactory(), p);
        Result<RunResult> attempt =
            runner.trySimulate("tiny-a", SimConfig::baseline(p.gpuConfig()));
        std::exit(writeWorkerResponse(kWorkerResponseFd, attempt) ? 0 : 1);
    }
    std::fprintf(stderr, "unknown worker mode '%s'\n", mode.c_str());
    std::exit(2);
}

} // namespace

// ------------------------------------------------------ atomic file ----

TEST(AtomicFile, WriteReadRoundtripAndOverwrite)
{
    std::filesystem::path dir = freshDir("evrsim_atomic_file");
    std::string path = (dir / "a.txt").string();

    ASSERT_TRUE(atomicWriteFile(path, "first").ok());
    ASSERT_TRUE(atomicWriteFile(path, "second contents").ok());

    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), "second contents");

    // No pid-tagged temp file may survive a successful publish.
    for (const auto &e : std::filesystem::directory_iterator(dir))
        EXPECT_EQ(e.path().filename().string(), "a.txt");
    std::filesystem::remove_all(dir);
}

TEST(AtomicFile, UnwritableDirectoryReportsUnavailable)
{
    Status s = atomicWriteFile("/nonexistent-dir-evrsim/x.txt", "data");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Unavailable);
}

// --------------------------------------------------------- envelope ----

TEST(Envelope, RoundtripPreservesPayload)
{
    Json payload = Json::object();
    payload.set("answer", 42);
    payload.set("name", std::string("tiny"));

    std::string text = wrapEnvelope(payload, 7).dump(0);
    Result<Json> back = parseEnvelope(text, 7);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().dump(1), payload.dump(1));
}

TEST(Envelope, SchemaMismatchAndDamageAreDataLoss)
{
    Json payload = Json::object();
    payload.set("v", 1);
    std::string text = wrapEnvelope(payload, 3).dump(0);

    Result<Json> wrong = parseEnvelope(text, 4);
    ASSERT_FALSE(wrong.ok());
    EXPECT_EQ(wrong.status().code(), ErrorCode::DataLoss);

    // Tamper with the payload value: the CRC no longer matches.
    std::string damaged = text;
    std::size_t at = damaged.rfind("1");
    ASSERT_NE(at, std::string::npos);
    damaged[at] = '2';
    Result<Json> bad = parseEnvelope(damaged, 3);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::DataLoss);
}

TEST(Envelope, StatusTransportPreservesErrorCode)
{
    Status original =
        Status::invariantViolation("tile (3,4) diverged from reference");
    Status back;
    ASSERT_TRUE(statusFromJson(statusToJson(original), back).ok());
    EXPECT_EQ(back.code(), ErrorCode::InvariantViolation);
    EXPECT_EQ(back.message(), original.message());
    EXPECT_FALSE(back.isTransient()); // must NOT arrive retryable

    Json garbage = Json::object();
    garbage.set("code", std::string("NO_SUCH_CODE"));
    garbage.set("message", std::string("x"));
    Status out;
    EXPECT_FALSE(statusFromJson(garbage, out).ok());
}

// -------------------------------------------------------- supervisor ---

TEST(Supervisor, DefaultGraceClamps)
{
    EXPECT_EQ(defaultGraceMs(0), 0);
    EXPECT_EQ(defaultGraceMs(100), 500);   // floor
    EXPECT_EQ(defaultGraceMs(2000), 1000); // timeout/2
    EXPECT_EQ(defaultGraceMs(60000), 5000); // ceiling
}

TEST(Supervisor, CleanWorkerResultMatchesInProcessByteForByte)
{
    WorkerOutcome o = superviseWorker(workerArgv("run"), WorkerLimits{});
    ASSERT_TRUE(o.status.ok()) << o.status.toString();
    EXPECT_FALSE(o.worker_died);

    BenchParams p = tinyParams();
    ExperimentRunner runner(tinyFactory(), p);
    Result<RunResult> local =
        runner.trySimulate("tiny-a", SimConfig::baseline(p.gpuConfig()));
    ASSERT_TRUE(local.ok());
    EXPECT_EQ(o.result.toJson(false).dump(2),
              local.value().toJson(false).dump(2));
}

TEST(Supervisor, WorkerStatusCodeSurvivesThePipe)
{
    WorkerOutcome o = superviseWorker(workerArgv("status"), WorkerLimits{});
    EXPECT_FALSE(o.worker_died); // clean exit: the job failed, not the worker
    EXPECT_EQ(o.status.code(), ErrorCode::InvariantViolation);
    EXPECT_NE(o.status.message().find("seeded strict-validation"),
              std::string::npos);
}

TEST(Supervisor, CrashIsAHardTransientDeath)
{
    WorkerOutcome o = superviseWorker(workerArgv("crash"), WorkerLimits{});
    EXPECT_TRUE(o.worker_died);
    EXPECT_EQ(o.status.code(), ErrorCode::Unavailable);
    EXPECT_NE(o.status.message().find("signal"), std::string::npos);
}

TEST(Supervisor, HangIsKilledAtTheHardDeadline)
{
    WorkerLimits limits;
    limits.timeout_ms = 200;
    limits.grace_ms = 100;
    auto start = std::chrono::steady_clock::now();
    WorkerOutcome o = superviseWorker(workerArgv("hang"), limits);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_TRUE(o.worker_died);
    EXPECT_EQ(o.status.code(), ErrorCode::Unavailable);
    EXPECT_NE(o.status.message().find("hard deadline"), std::string::npos);
    // SIGKILL + reap must land promptly after timeout+grace, not after
    // the hour the worker intended to sleep.
    EXPECT_LT(elapsed, 10000);
}

TEST(Supervisor, OomBudgetKillsTheWorker)
{
#ifdef EVRSIM_SANITIZED
    GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer runtimes";
#else
    WorkerLimits limits;
    limits.mem_mb = 128;
    limits.timeout_ms = 30000;
    limits.grace_ms = 1000;
    WorkerOutcome o = superviseWorker(workerArgv("oom"), limits);
    EXPECT_TRUE(o.worker_died);
    EXPECT_EQ(o.status.code(), ErrorCode::Unavailable);
#endif
}

TEST(Supervisor, ExecFailureIsADeath)
{
    WorkerOutcome o = superviseWorker(
        {"/nonexistent-evrsim-worker-binary", "--x"}, WorkerLimits{});
    EXPECT_TRUE(o.worker_died);
    EXPECT_NE(o.status.message().find("exec"), std::string::npos);
}

// ------------------------------------------- runner crash quarantine ---

TEST(RunnerIsolation, CrashQuarantineAfterMaxAttempts)
{
    BenchParams p = tinyParams();
    p.isolate = IsolateMode::Process;
    ExperimentRunner runner(tinyFactory(), p);
    std::atomic<int> launches{0};
    runner.setWorkerLauncher([&](const std::string &, const SimConfig &,
                                 const std::string &) {
        launches.fetch_add(1);
        return WorkerAttempt{Status::unavailable("scripted worker death"),
                             RunResult{}, true};
    });

    SimConfig cfg = SimConfig::baseline(p.gpuConfig());
    BatchOutcome outcome = runner.runAllChecked({{"tiny-a", cfg}});
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_TRUE(outcome.failures[0].quarantined);
    EXPECT_EQ(outcome.failures[0].attempts, kJobMaxAttempts);
    EXPECT_EQ(launches.load(), kJobMaxAttempts);
    EXPECT_EQ(runner.sweepStats().crash_quarantined, 1u);
    EXPECT_EQ(runner.sweepStats().failed, 1u);

    // The memo shields the quarantined job from ever relaunching.
    EXPECT_FALSE(runner.tryRun("tiny-a", cfg).ok());
    EXPECT_EQ(launches.load(), kJobMaxAttempts);
}

TEST(RunnerIsolation, NonDeathFailuresAreNotCrashQuarantined)
{
    BenchParams p = tinyParams();
    p.isolate = IsolateMode::Process;
    ExperimentRunner runner(tinyFactory(), p);
    runner.setWorkerLauncher([](const std::string &, const SimConfig &,
                                const std::string &) {
        // The worker survives and reports a permanent job failure.
        return WorkerAttempt{
            Status::invariantViolation("worker-reported failure"),
            RunResult{}, false};
    });

    BatchOutcome outcome = runner.runAllChecked(
        {{"tiny-a", SimConfig::baseline(p.gpuConfig())}});
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_FALSE(outcome.failures[0].quarantined);
    EXPECT_EQ(outcome.failures[0].attempts, 1); // not transient: no retry
    EXPECT_EQ(outcome.failures[0].status.code(),
              ErrorCode::InvariantViolation);
    EXPECT_EQ(runner.sweepStats().crash_quarantined, 0u);
}

TEST(RunnerIsolation, SurvivorsOfACrashySweepMatchAFaultFreeRun)
{
    BenchParams p = tinyParams();
    std::vector<RunRequest> reqs = tinyBatch(p.gpuConfig());

    ExperimentRunner clean(tinyFactory(), p);
    BatchOutcome want = clean.runAllChecked(reqs);
    ASSERT_TRUE(want.ok());

    BenchParams pi = p;
    pi.isolate = IsolateMode::Process;
    ExperimentRunner faulty(tinyFactory(), pi);
    // Jobs of tiny-b die on every attempt; every other job runs a real
    // (in-process) simulation — the deterministic-per-job shape the
    // keyed worker-crash fault site produces in production.
    faulty.setWorkerLauncher([&faulty](const std::string &alias,
                                       const SimConfig &config,
                                       const std::string &) {
        if (alias == "tiny-b")
            return WorkerAttempt{
                Status::unavailable("scripted worker death"), RunResult{},
                true};
        Result<RunResult> r = faulty.trySimulate(alias, config);
        if (!r.ok())
            return WorkerAttempt{r.status(), RunResult{}, false};
        return WorkerAttempt{Status(), r.value(), false};
    });

    BatchOutcome got = faulty.runAllChecked(reqs);
    ASSERT_EQ(got.failures.size(), 3u); // the three tiny-b configs
    for (const RunFailure &f : got.failures) {
        EXPECT_EQ(f.alias, "tiny-b");
        EXPECT_TRUE(f.quarantined);
    }
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].alias != "tiny-a")
            continue;
        EXPECT_EQ(got.results[i].toJson(false).dump(2),
                  want.results[i].toJson(false).dump(2))
            << "survivor " << i << " diverged under isolation";
    }
    EXPECT_EQ(faulty.sweepStats().crash_quarantined, 3u);
}

// ------------------------------------------------- corrupt-file cap ----

TEST(CorruptCap, KeepsNewestCopiesAndCountsEvictions)
{
    std::filesystem::path dir = freshDir("evrsim_corrupt_cap");
    BenchParams p = tinyParams(dir.string());
    p.corrupt_keep = 1;
    SimConfig cfg = SimConfig::baseline(p.gpuConfig());

    std::string key;
    std::uint64_t last_evicted = 0;
    for (int round = 0; round < 3; ++round) {
        ExperimentRunner runner(tinyFactory(), p);
        key = runner.jobKey("tiny-a", cfg);
        // Damage the published entry, then re-run: the load detects
        // DataLoss, quarantines, and re-simulates.
        std::ofstream((dir / key).string()) << "{damaged";
        ASSERT_TRUE(runner.tryRun("tiny-a", cfg).ok());
        EXPECT_EQ(runner.sweepStats().quarantined, 1u);
        last_evicted = runner.sweepStats().corrupt_evicted;
    }

    // Three quarantines, cap 1: only the newest sequence number lives.
    std::vector<std::string> corrupt;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".corrupt")
            corrupt.push_back(e.path().filename().string());
    ASSERT_EQ(corrupt.size(), 1u);
    EXPECT_EQ(corrupt[0], key + ".2.corrupt");
    EXPECT_EQ(last_evicted, 1u); // each later round evicts its predecessor
    std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- sweep journal ---

TEST(Journal, RecordReplayRoundtrip)
{
    std::filesystem::path dir = freshDir("evrsim_journal_roundtrip");
    std::string path = (dir / "sweep.journal").string();

    RunResult r;
    r.workload = "tiny-a";
    r.config = "baseline";
    r.frames = 3;
    r.image_crc = 0xdeadbeef;

    {
        SweepJournal j;
        ASSERT_TRUE(j.open(path).ok());
        j.recordStart("a.json");
        j.recordStart("b.json");
        j.recordStart("c.json");
        j.recordFinish("a.json", r, 1);
        j.recordFail("b.json",
                     Status::invariantViolation("strict failure"), 1,
                     false);
        j.recordFail("c.json", Status::unavailable("crashed thrice"), 3,
                     true);
        j.recordStart("d.json"); // interrupted: no terminal record
    }

    Result<SweepJournal::Replay> replayed = SweepJournal::replay(path);
    ASSERT_TRUE(replayed.ok());
    const SweepJournal::Replay &rep = replayed.value();
    EXPECT_EQ(rep.damaged, 0u);
    EXPECT_EQ(rep.in_flight, 1u);
    ASSERT_EQ(rep.outcomes.size(), 3u);

    const auto &a = rep.outcomes.at("a.json");
    EXPECT_EQ(a.kind, SweepJournal::ReplayedOutcome::Kind::Finished);
    EXPECT_EQ(a.result.toJson(false).dump(2), r.toJson(false).dump(2));
    EXPECT_EQ(a.attempts, 1);

    const auto &b = rep.outcomes.at("b.json");
    EXPECT_EQ(b.kind, SweepJournal::ReplayedOutcome::Kind::Failed);
    EXPECT_EQ(b.status.code(), ErrorCode::InvariantViolation);

    const auto &c = rep.outcomes.at("c.json");
    EXPECT_EQ(c.kind, SweepJournal::ReplayedOutcome::Kind::Quarantined);
    EXPECT_EQ(c.attempts, 3);
    std::filesystem::remove_all(dir);
}

TEST(Journal, TornTailIsDroppedNotFatal)
{
    std::filesystem::path dir = freshDir("evrsim_journal_torn");
    std::string path = (dir / "sweep.journal").string();

    RunResult r;
    r.workload = "tiny-a";
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(path).ok());
        j.recordStart("a.json");
        j.recordFinish("a.json", r, 1);
    }
    // Simulate the record torn by the crash being resumed from.
    std::ofstream(path, std::ios::app)
        << "{\"schema\": 1, \"payload_crc32\": 123, \"payl";

    Result<SweepJournal::Replay> replayed = SweepJournal::replay(path);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(replayed.value().damaged, 1u);
    ASSERT_EQ(replayed.value().outcomes.size(), 1u);
    EXPECT_EQ(replayed.value().outcomes.count("a.json"), 1u);

    // A missing journal is an empty replay, not an error.
    Result<SweepJournal::Replay> none =
        SweepJournal::replay((dir / "nope.journal").string());
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none.value().outcomes.empty());
    std::filesystem::remove_all(dir);
}

TEST(Journal, ResumeReexecutesOnlyUnfinishedJobsByteIdentically)
{
    // The reference: one uninterrupted sweep.
    std::filesystem::path ref_dir = freshDir("evrsim_resume_ref");
    BenchParams ref_params = tinyParams(ref_dir.string());
    std::vector<RunRequest> reqs = tinyBatch(ref_params.gpuConfig());
    ExperimentRunner ref(tinyFactory(), ref_params);
    std::vector<RunResult> want = ref.runAll(reqs);

    // The "interrupted" sweep: only the first two jobs reached the
    // journal before the (simulated) SIGKILL.
    std::filesystem::path dir = freshDir("evrsim_resume");
    BenchParams p = tinyParams(dir.string());
    {
        ExperimentRunner first(tinyFactory(), p);
        first.runAll({reqs[0], reqs[1]});
    }
    // Delete every cache entry: resume must work from the journal's
    // embedded results alone (EVRSIM_NO_CACHE sweeps have no entries).
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().extension() == ".json")
            std::filesystem::remove(e.path());

    std::atomic<int> builds{0};
    BenchParams pr = p;
    pr.resume = true;
    ExperimentRunner resumed(tinyFactory(&builds), pr);
    EXPECT_EQ(resumed.sweepStats().resumed, 2u);
    std::vector<RunResult> got = resumed.runAll(reqs);

    // Only the four unfinished jobs simulate; all six results match
    // the uninterrupted sweep byte for byte.
    EXPECT_EQ(builds.load(), static_cast<int>(reqs.size()) - 2);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i].toJson(false).dump(2),
                  want[i].toJson(false).dump(2))
            << "resumed run " << i << " diverged";

    std::filesystem::remove_all(ref_dir);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------ keyed worker faults --

TEST(WorkerFaults, PlanParsesAndKeyedDecisionsAreDeterministic)
{
    Result<FaultPlan> plan =
        FaultInjector::parsePlan("worker-crash:0.5:7,worker-hang:1:9");
    ASSERT_TRUE(plan.ok()) << plan.status().toString();
    EXPECT_TRUE(plan.value()[static_cast<int>(FaultSite::WorkerCrash)]
                    .enabled);
    EXPECT_TRUE(plan.value()[static_cast<int>(FaultSite::WorkerHang)]
                    .enabled);

    // Keyed decisions are pure in (seed, key): every attempt of a job
    // draws the same verdict, across processes and draw ordering.
    FaultInjector a(plan.value());
    FaultInjector b(plan.value());
    int crashes = 0;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t key = fnv1a64("job-" + std::to_string(i) + ".json");
        bool first = a.shouldFailAt(FaultSite::WorkerCrash, key);
        EXPECT_EQ(first, b.shouldFailAt(FaultSite::WorkerCrash, key));
        EXPECT_EQ(first, a.shouldFailAt(FaultSite::WorkerCrash, key));
        crashes += first ? 1 : 0;
    }
    // rate 0.5 over 64 keys: some crash, some survive.
    EXPECT_GT(crashes, 0);
    EXPECT_LT(crashes, 64);
}

// -------------------------------------------------------- bench knobs --

TEST(BenchParamsEnv, IsolationKnobsParse)
{
    unsetenv("EVRSIM_ISOLATE");
    unsetenv("EVRSIM_JOB_MEM_MB");
    unsetenv("EVRSIM_RESUME");
    unsetenv("EVRSIM_CORRUPT_KEEP");
    BenchParams def = benchParamsFromEnv();
    EXPECT_EQ(def.isolate, IsolateMode::Off);
    EXPECT_EQ(def.job_mem_mb, 0);
    EXPECT_FALSE(def.resume);
    EXPECT_EQ(def.corrupt_keep, 3);

    setenv("EVRSIM_ISOLATE", "process", 1);
    setenv("EVRSIM_JOB_MEM_MB", "512", 1);
    setenv("EVRSIM_RESUME", "1", 1);
    setenv("EVRSIM_CORRUPT_KEEP", "5", 1);
    BenchParams p = benchParamsFromEnv();
    EXPECT_EQ(p.isolate, IsolateMode::Process);
    EXPECT_EQ(p.job_mem_mb, 512);
    EXPECT_TRUE(p.resume);
    EXPECT_EQ(p.corrupt_keep, 5);

    setenv("EVRSIM_ISOLATE", "sandbox", 1);
    EXPECT_EXIT(benchParamsFromEnv(), ::testing::ExitedWithCode(1),
                "EVRSIM_ISOLATE");
    unsetenv("EVRSIM_ISOLATE");
    unsetenv("EVRSIM_JOB_MEM_MB");
    unsetenv("EVRSIM_RESUME");
    unsetenv("EVRSIM_CORRUPT_KEEP");
}

// --------------------------------------------------------------- main --

int
main(int argc, char **argv)
{
    // Worker dispatch must run before gtest sees the argument list.
    if (argc >= 2 &&
        std::string(argv[1]) == "--supervisor-test-worker")
        return runScriptedWorker(argc >= 3 ? argv[2] : "");
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
