/**
 * @file
 * Unit tests for the Raster Pipeline driven through the simulator
 * facade: clears, depth-test semantics (early and late), painter's
 * algorithm for NWOZ primitives, alpha blending, shader discard, the
 * Figure 8 oracle mode, per-tile flush accounting and ground-truth
 * visibility statistics — plus the tile-parallel/SIMD bit-identity
 * property over the full workload registry.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "driver/run_result.hpp"
#include "gpu/raster_kernels.hpp"
#include "support.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

RenderState
wozState()
{
    RenderState s;
    s.depth_test = true;
    s.depth_write = true;
    return s;
}

RenderState
nwozState(BlendMode blend = BlendMode::Opaque)
{
    RenderState s;
    s.depth_test = false;
    s.depth_write = false;
    s.blend = blend;
    return s;
}

/** Fixture: a 64x48 baseline GPU and a reusable quad. */
class RasterTest : public ::testing::Test
{
  protected:
    RasterTest()
        : sim(SimConfig::baseline(tinyGpu())),
          quad(meshes::quad({1, 1, 1, 1}))
    {
        sim.uploadMesh(quad);
    }

    Scene
    newScene()
    {
        Scene s;
        setCamera2D(s, 64, 48);
        s.clear_color = {10, 20, 30, 255};
        return s;
    }

    /** Count pixels with exactly this color. */
    std::uint64_t
    countPixels(Rgba8 c)
    {
        std::uint64_t n = 0;
        const Framebuffer &fb = sim.framebuffer();
        for (int y = 0; y < fb.height(); ++y)
            for (int x = 0; x < fb.width(); ++x)
                n += fb.pixel(x, y) == c;
        return n;
    }

    GpuSimulator sim;
    Mesh quad;
};

} // namespace

TEST_F(RasterTest, EmptySceneFillsClearColor)
{
    FrameStats s = sim.renderFrame(newScene());
    EXPECT_EQ(countPixels({10, 20, 30, 255}), 64u * 48u);
    EXPECT_EQ(s.fragments_shaded, 0u);
    EXPECT_EQ(s.tiles_rendered, 12u);
    EXPECT_EQ(s.tile_flush_bytes, 64u * 48u * 4u);
}

TEST_F(RasterTest, OpaqueQuadColorsExactPixels)
{
    Scene scene = newScene();
    DrawCommand &cmd =
        submitRect(scene, &quad, 16, 16, 16, 16, 0.5f, wozState());
    cmd.tint = {1.0f, 0.0f, 0.0f, 1.0f};
    FrameStats s = sim.renderFrame(scene);
    EXPECT_EQ(countPixels({255, 0, 0, 255}), 256u);
    EXPECT_EQ(s.fragments_shaded, 256u);
    EXPECT_EQ(s.blend_ops, 256u);
}

TEST_F(RasterTest, DepthTestPicksNearerRegardlessOfOrder)
{
    for (bool near_first : {false, true}) {
        Scene scene = newScene();
        auto submit_near = [&] {
            DrawCommand &c =
                submitRect(scene, &quad, 0, 0, 32, 32, 0.2f, wozState());
            c.tint = {1, 0, 0, 1};
        };
        auto submit_far = [&] {
            DrawCommand &c =
                submitRect(scene, &quad, 0, 0, 32, 32, 0.8f, wozState());
            c.tint = {0, 1, 0, 1};
        };
        if (near_first) {
            submit_near();
            submit_far();
        } else {
            submit_far();
            submit_near();
        }
        FrameStats s = sim.renderFrame(scene);
        EXPECT_EQ(countPixels({255, 0, 0, 255}), 1024u);
        EXPECT_EQ(countPixels({0, 255, 0, 255}), 0u);
        if (near_first) {
            // The far quad is rejected by the Early-Z test: not shaded.
            EXPECT_EQ(s.early_z_kills, 1024u);
            EXPECT_EQ(s.fragments_shaded, 1024u);
        } else {
            // Far drawn first: both shaded (overshading).
            EXPECT_EQ(s.early_z_kills, 0u);
            EXPECT_EQ(s.fragments_shaded, 2048u);
        }
    }
}

TEST_F(RasterTest, EqualDepthFailsTheLessTest)
{
    Scene scene = newScene();
    DrawCommand &a = submitRect(scene, &quad, 0, 0, 16, 16, 0.5f, wozState());
    a.tint = {1, 0, 0, 1};
    DrawCommand &b = submitRect(scene, &quad, 0, 0, 16, 16, 0.5f, wozState());
    b.tint = {0, 1, 0, 1};
    sim.renderFrame(scene);
    // First-drawn wins on ties (LESS comparison).
    EXPECT_EQ(countPixels({255, 0, 0, 255}), 256u);
}

TEST_F(RasterTest, NwozPainterOrderLastWins)
{
    Scene scene = newScene();
    // Later command covers earlier one even though its z is "farther".
    DrawCommand &a =
        submitRect(scene, &quad, 0, 0, 16, 16, 0.1f, nwozState());
    a.tint = {1, 0, 0, 1};
    DrawCommand &b =
        submitRect(scene, &quad, 0, 0, 16, 16, 0.9f, nwozState());
    b.tint = {0, 0, 1, 1};
    FrameStats s = sim.renderFrame(scene);
    EXPECT_EQ(countPixels({0, 0, 255, 255}), 256u);
    // No depth activity for NWOZ-only scenes.
    EXPECT_EQ(s.early_z_tests, 0u);
    EXPECT_EQ(s.late_z_tests, 0u);
    EXPECT_EQ(s.fragments_shaded, 512u); // unavoidable 2D overshade
}

TEST_F(RasterTest, AlphaBlendingMathIsExact)
{
    Scene scene = newScene();
    DrawCommand &bg =
        submitRect(scene, &quad, 0, 0, 16, 16, 0.5f, nwozState());
    bg.tint = {0, 0, 1, 1};
    DrawCommand &fg = submitRect(scene, &quad, 0, 0, 16, 16, 0.4f,
                                 nwozState(BlendMode::Alpha));
    fg.tint = {1, 0, 0, 0.5f};
    sim.renderFrame(scene);
    // 0.5*red + 0.5*blue, alpha = 0.5 + 1*0.5 = 1.
    Rgba8 got = sim.framebuffer().pixel(8, 8);
    EXPECT_EQ(got.r, 128);
    EXPECT_EQ(got.g, 0);
    EXPECT_EQ(got.b, 128);
    EXPECT_EQ(got.a, 255);
}

TEST_F(RasterTest, AlphaOneInBlendModeCountsAsOpaqueWrite)
{
    Scene scene = newScene();
    DrawCommand &fg = submitRect(scene, &quad, 0, 0, 16, 16, 0.4f,
                                 nwozState(BlendMode::Alpha));
    fg.tint = {1, 0, 0, 1.0f};
    sim.renderFrame(scene);
    EXPECT_EQ(countPixels({255, 0, 0, 255}), 256u);
}

TEST_F(RasterTest, TranslucentDoesNotOccludeLaterOpaque)
{
    // Translucent primitives do not write Z: a later opaque WOZ behind
    // them still lands (this is why apps draw translucents last).
    Scene scene = newScene();
    RenderState translucent;
    translucent.depth_test = true;
    translucent.depth_write = false;
    translucent.blend = BlendMode::Alpha;
    DrawCommand &t =
        submitRect(scene, &quad, 0, 0, 16, 16, 0.2f, translucent);
    t.tint = {1, 1, 1, 0.5f};
    DrawCommand &o = submitRect(scene, &quad, 0, 0, 16, 16, 0.8f, wozState());
    o.tint = {0, 1, 0, 1};
    FrameStats s = sim.renderFrame(scene);
    EXPECT_EQ(countPixels({0, 255, 0, 255}), 256u);
    EXPECT_EQ(s.early_z_kills, 0u);
}

TEST_F(RasterTest, DiscardShaderUsesLateZ)
{
    Scene scene = newScene();
    // A checkerboard alpha texture: half the fragments discard.
    Texture alpha_tex(TextureKind::Checker, 16, {1, 1, 1, 1},
                      {1, 1, 1, 0.0f}, 3, 8);
    sim.registerTexture(alpha_tex);
    scene.textures.push_back(&alpha_tex);

    RenderState discard = wozState();
    discard.program = FragmentProgram::TexturedDiscard;
    discard.texture = 0;
    DrawCommand &d = submitRect(scene, &quad, 0, 0, 16, 16, 0.5f, discard);
    d.tint = {1, 0, 0, 1};

    FrameStats s = sim.renderFrame(scene);
    // No early-Z possible; all fragments shaded, half discarded.
    EXPECT_EQ(s.early_z_tests, 0u);
    EXPECT_EQ(s.fragments_shaded, 256u);
    EXPECT_EQ(s.fragments_discarded_shader, 128u);
    EXPECT_EQ(s.late_z_tests, 128u);
    EXPECT_EQ(countPixels({255, 0, 0, 255}), 128u);
    // Discarded pixels keep the clear color.
    EXPECT_EQ(countPixels({10, 20, 30, 255}), 64u * 48u - 128u);
}

TEST_F(RasterTest, DiscardedFragmentsDoNotWriteDepth)
{
    Scene scene = newScene();
    Texture alpha_tex(TextureKind::Checker, 16, {1, 1, 1, 1},
                      {1, 1, 1, 0.0f}, 3, 8);
    sim.registerTexture(alpha_tex);
    scene.textures.push_back(&alpha_tex);

    RenderState discard = wozState();
    discard.program = FragmentProgram::TexturedDiscard;
    discard.texture = 0;
    submitRect(scene, &quad, 0, 0, 16, 16, 0.2f, discard);

    // A farther opaque quad drawn after must appear wherever the
    // discard shader killed its fragments.
    DrawCommand &behind =
        submitRect(scene, &quad, 0, 0, 16, 16, 0.8f, wozState());
    behind.tint = {0, 0, 1, 1};

    sim.renderFrame(scene);
    EXPECT_EQ(countPixels({0, 0, 255, 255}), 128u);
}

TEST_F(RasterTest, OracleZEliminatesOvershading)
{
    // Far-then-near stack: baseline shades twice, the oracle shades the
    // visible fragment only.
    auto build = [](Scene &scene, Mesh *q) {
        DrawCommand &far_cmd =
            submitRect(scene, q, 0, 0, 32, 32, 0.8f, wozState());
        far_cmd.tint = {0, 1, 0, 1};
        DrawCommand &near_cmd =
            submitRect(scene, q, 0, 0, 32, 32, 0.2f, wozState());
        near_cmd.tint = {1, 0, 0, 1};
    };

    Scene base_scene = newScene();
    build(base_scene, &quad);
    FrameStats base = sim.renderFrame(base_scene);
    EXPECT_EQ(base.fragments_shaded, 2048u);

    GpuSimulator oracle(SimConfig::oracleZ(tinyGpu()));
    Mesh quad2 = meshes::quad({1, 1, 1, 1});
    oracle.uploadMesh(quad2);
    Scene scene;
    setCamera2D(scene, 64, 48);
    scene.clear_color = {10, 20, 30, 255};
    build(scene, &quad2);
    FrameStats orc = oracle.renderFrame(scene);
    EXPECT_EQ(orc.fragments_shaded, 1024u);
    EXPECT_EQ(orc.early_z_kills, 1024u);

    // Identical image either way.
    EXPECT_TRUE(oracle.framebuffer().equals(sim.framebuffer()));
}

TEST_F(RasterTest, GroundTruthCountsHiddenPrimitiveOccluded)
{
    Scene scene = newScene();
    // 15x15 quads strictly inside tile 0 (a 16-aligned quad would also
    // be conservatively binned into the boundary-touching neighbours,
    // adding zero-coverage pairs).
    submitRect(scene, &quad, 0, 0, 15, 15, 0.8f, wozState()); // hidden
    submitRect(scene, &quad, 0, 0, 15, 15, 0.2f, wozState()); // covers it
    FrameStats s = sim.renderFrame(scene);
    // Without EVR nothing is predicted occluded: scenario B counts the
    // actually-occluded pairs, scenario A the visible ones.
    int b = static_cast<int>(Casuistry::VisibleOccluded);
    int a = static_cast<int>(Casuistry::VisibleVisible);
    EXPECT_EQ(s.casuistry[b], 2u); // two triangles of the hidden quad
    EXPECT_EQ(s.casuistry[a], 2u);
}

TEST_F(RasterTest, PartialEdgeTilesFlushOnlyTheirPixels)
{
    // 40x24 screen -> 3x2 tiles with an 8px-wide right column; total
    // flushed bytes = pixels * 4 exactly.
    GpuSimulator small(SimConfig::baseline(tinyGpu(40, 24)));
    Mesh q = meshes::quad({1, 1, 1, 1});
    small.uploadMesh(q);
    Scene scene;
    setCamera2D(scene, 40, 24);
    FrameStats s = small.renderFrame(scene);
    EXPECT_EQ(s.tile_flush_bytes, 40u * 24u * 4u);
    EXPECT_EQ(s.tiles_total, 6u);
}

TEST_F(RasterTest, FramebufferTrafficMatchesFlush)
{
    Scene scene = newScene();
    FrameStats s = sim.renderFrame(scene);
    int fb_class = static_cast<int>(TrafficClass::Framebuffer);
    EXPECT_EQ(s.mem.dram.write_bytes[fb_class], s.tile_flush_bytes);
}

TEST_F(RasterTest, TimingProducesNonZeroCycles)
{
    Scene scene = newScene();
    submitRect(scene, &quad, 0, 0, 64, 48, 0.5f, wozState());
    FrameStats s = sim.renderFrame(scene);
    EXPECT_GT(s.geometry_cycles, 0u);
    EXPECT_GT(s.raster_cycles, 0u);
    // Raster dominates for fragment-heavy frames.
    EXPECT_GT(s.raster_cycles, s.geometry_cycles);
}

// ---------------------------------------------------------------------------
// Tile-parallel + SIMD bit-identity property (DESIGN.md section 12).
// ---------------------------------------------------------------------------

namespace {

/**
 * Simulate one (workload, config) run and return its RunResult JSON
 * without host-timing fields. @p reference selects the scalar-serial
 * leg: reference rasterizer, scalar kernels, serial tiles; otherwise
 * the production leg renders tiles on a 4-worker pool with the
 * SoA/SIMD fast path.
 */
std::string
runIdentityLeg(const std::string &alias, const SimConfig &config,
               bool reference)
{
    std::unique_ptr<Workload> workload =
        workloads::factory()(alias, 608, 384);
    if (!workload) {
        ADD_FAILURE() << "unknown workload " << alias;
        return {};
    }
    GpuSimulator sim(config);
    sim.setReferenceRaster(reference);
    if (!reference)
        sim.setTileExecution(nullptr, 4);
    workload->setup(sim);
    sim.renderFrame(workload->frame(0)); // warm-up (FVP / signatures)
    sim.resetTotals();
    for (int f = 1; f <= 2; ++f)
        sim.renderFrame(workload->frame(f));

    RunResult r;
    r.workload = alias;
    r.config = config.name;
    r.frames = 2;
    r.width = 608;
    r.height = 384;
    r.totals = sim.totals();
    r.energy = sim.energyOf(sim.totals());
    r.image_crc = sim.framebuffer().contentCrc();
    return r.toJson(false).dump(2);
}

} // namespace

// Every Table III workload, under both the baseline and the EVR
// configuration, rendered with EVRSIM_TILE_JOBS=4 and the SIMD fast
// path must produce a RunResult JSON — pixels, every stat counter,
// energy, image CRC — byte-identical to the scalar serial reference
// path. This is the determinism contract of the tile-parallel design:
// tile compute is pure, memory accesses replay serially in tile order,
// and the SoA/SIMD kernels are bit-exact against the scalar rasterizer.
TEST(TileParallelIdentity, AllWorkloadsMatchScalarSerialByteForByte)
{
    GpuConfig gpu;
    gpu.screen_width = 608;
    gpu.screen_height = 384;
    for (const std::string &alias : workloads::allAliases()) {
        for (const SimConfig &config :
             {SimConfig::baseline(gpu), SimConfig::evr(gpu)}) {
            forceSimdLevel(SimdLevel::Scalar);
            std::string ref = runIdentityLeg(alias, config, true);
            forceSimdLevel(bestSimdLevel());
            std::string fast = runIdentityLeg(alias, config, false);
            EXPECT_EQ(ref, fast) << alias << "/" << config.name;
        }
    }
    forceSimdLevel(bestSimdLevel());
}
