/**
 * @file
 * Tests for the benchmark suite: registry completeness against
 * Table III, frame determinism and purity (frame(i) independent of
 * evaluation order), structural invariants per benchmark class (2D =
 * NWOZ-only, 3D = contains WOZ), resolution scaling, and a smoke
 * simulation of every workload.
 */
#include <gtest/gtest.h>

#include <set>

#include "support.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {
constexpr int kW = 160;
constexpr int kH = 96;
} // namespace

TEST(Registry, HasExactlyTheTwentyTableIIIBenchmarks)
{
    const auto &aliases = workloads::allAliases();
    EXPECT_EQ(aliases.size(), 20u);
    std::set<std::string> unique(aliases.begin(), aliases.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const char *alias :
         {"300", "ata", "csn", "mst", "ter", "tib", "abi", "arm", "ale",
          "ccs", "cde", "coc", "ctr", "dpe", "hay", "hop", "mto", "red",
          "wmw", "wog"}) {
        EXPECT_TRUE(unique.count(alias)) << alias;
    }
}

TEST(Registry, SixBenchmarksAre3D)
{
    const auto &three_d = workloads::aliases3D();
    EXPECT_EQ(three_d.size(), 6u);
    for (const std::string &alias : three_d)
        EXPECT_TRUE(workloads::infoFor(alias).is_3d) << alias;
}

TEST(Registry, InfoMatchesTableIII)
{
    EXPECT_EQ(workloads::infoFor("ccs").title, "Candy Crush Saga");
    EXPECT_EQ(workloads::infoFor("ccs").genre, "Puzzle");
    EXPECT_FALSE(workloads::infoFor("ccs").is_3d);
    EXPECT_EQ(workloads::infoFor("mst").genre, "First Person Shooter");
    EXPECT_TRUE(workloads::infoFor("mst").is_3d);
    EXPECT_EQ(workloads::infoFor("wog").title, "World of goo");
}

TEST(Registry, UnknownAliasReturnsNull)
{
    EXPECT_EQ(workloads::make("zzz", kW, kH), nullptr);
    EXPECT_EQ(workloads::factory()("zzz", kW, kH), nullptr);
}

TEST(Registry, EveryAliasConstructs)
{
    for (const std::string &alias : workloads::allAliases()) {
        auto w = workloads::make(alias, kW, kH);
        ASSERT_NE(w, nullptr) << alias;
        EXPECT_EQ(w->info().alias, alias);
    }
}

// --- Parameterized per-benchmark structural checks ----------------------

class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadProperty, FramesAreDeterministicAndOrderIndependent)
{
    // frame(5) must be identical whether or not other frames were
    // generated before it.
    auto a = workloads::make(GetParam(), kW, kH);
    auto b = workloads::make(GetParam(), kW, kH);
    for (int i = 0; i < 5; ++i)
        a->frame(i);

    Scene sa = a->frame(5);
    Scene sb = b->frame(5);
    ASSERT_EQ(sa.commands.size(), sb.commands.size());
    for (std::size_t i = 0; i < sa.commands.size(); ++i) {
        const DrawCommand &ca = sa.commands[i];
        const DrawCommand &cb = sb.commands[i];
        EXPECT_EQ(ca.id, cb.id);
        EXPECT_EQ(ca.state, cb.state);
        EXPECT_EQ(ca.tint, cb.tint);
        EXPECT_TRUE(ca.model == cb.model) << "command " << i;
        EXPECT_EQ(ca.mesh->vertices.size(), cb.mesh->vertices.size());
    }
}

TEST_P(WorkloadProperty, ClassInvariants)
{
    auto w = workloads::make(GetParam(), kW, kH);
    bool any_woz = false;
    bool any_nwoz = false;
    std::size_t commands = 0;
    for (int i = 0; i < 3; ++i) {
        Scene s = w->frame(i);
        commands = s.commands.size();
        EXPECT_GT(commands, 0u);
        for (const DrawCommand &c : s.commands) {
            any_woz |= c.state.isWoz();
            any_nwoz |= !c.state.isWoz();
            // Texture slots must be valid.
            if (c.state.texture >= 0) {
                EXPECT_LT(static_cast<std::size_t>(c.state.texture),
                          s.textures.size());
            }
            EXPECT_NE(c.mesh, nullptr);
            EXPECT_GT(c.mesh->triangleCount(), 0u);
        }
    }
    if (w->info().is_3d) {
        // 3D benchmarks contain WOZ geometry plus NWOZ elements (HUD or
        // translucent effects).
        EXPECT_TRUE(any_woz) << "3D benchmark without WOZ primitives";
    } else {
        // 2D benchmarks are pure painter's algorithm: NWOZ only.
        EXPECT_FALSE(any_woz) << "2D benchmark with WOZ primitives";
        EXPECT_TRUE(any_nwoz);
    }
}

TEST_P(WorkloadProperty, FrameToFrameCoherence)
{
    // Consecutive frames of every benchmark must share most of their
    // command structure (same count, mostly identical transforms) —
    // frame coherence is the paper's base assumption.
    auto w = workloads::make(GetParam(), kW, kH);
    Scene f0 = w->frame(10);
    Scene f1 = w->frame(11);
    ASSERT_EQ(f0.commands.size(), f1.commands.size());
    std::size_t identical = 0;
    for (std::size_t i = 0; i < f0.commands.size(); ++i) {
        if (f0.commands[i].model == f1.commands[i].model &&
            f0.commands[i].tint == f1.commands[i].tint)
            ++identical;
    }
    // The static content (background + baked sprite batch, at minimum)
    // is bit-identical between frames. Sprite-heavy benchmarks animate
    // most *commands* while most *pixels* stay static, so the invariant
    // is on the static anchors, not a command ratio.
    EXPECT_GE(identical, 2u);
}

TEST_P(WorkloadProperty, SmokeSimulation)
{
    // Three frames through the full EVR simulator: must not crash, must
    // touch every tile, and the EVR run must match baseline output.
    GpuConfig gpu = tinyGpu(kW, kH);

    GpuSimulator base(SimConfig::baseline(gpu));
    auto wb = workloads::make(GetParam(), kW, kH);
    wb->setup(base);

    GpuSimulator evr(SimConfig::evr(gpu));
    auto we = workloads::make(GetParam(), kW, kH);
    we->setup(evr);

    for (int i = 0; i < 3; ++i) {
        base.renderFrame(wb->frame(i));
        evr.renderFrame(we->frame(i));
        ASSERT_TRUE(base.framebuffer().equals(evr.framebuffer()))
            << GetParam() << " frame " << i;
    }
    EXPECT_GT(base.totals().fragments_shaded, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadProperty,
    ::testing::ValuesIn(workloads::allAliases()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        // "300" is not a valid test name prefix; prefix alnum-only.
        return "wl_" + name;
    });

// --- Resolution scaling --------------------------------------------------

TEST(WorkloadScaling, LayoutsScaleWithResolution)
{
    // The same benchmark at 2x resolution must produce commands whose
    // screen footprint scales accordingly (HUD bars in pixels).
    auto small = workloads::make("ccs", 160, 96);
    auto large = workloads::make("ccs", 320, 192);
    Scene s = small->frame(0);
    Scene l = large->frame(0);
    EXPECT_EQ(s.commands.size(), l.commands.size());
}
