/**
 * @file
 * The defensive simulation core: EVRSIM_VALIDATE resolution, panic-free
 * scene ingestion (audit/sanitize), each invariant-auditor check against
 * deliberately seeded violations, safe degradation in permissive mode,
 * and the strict-mode conversion of violations into failing Status.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/crash_handler.hpp"
#include "common/validate.hpp"
#include "driver/experiment.hpp"
#include "gpu/invariant_auditor.hpp"
#include "scene/scene_validate.hpp"
#include "support.hpp"

using namespace evrsim;
using namespace evrsim::test;

namespace {

constexpr int kW = 64;
constexpr int kH = 48;

/** Scoped environment override, restored on destruction. */
class EnvVar
{
  public:
    EnvVar(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvVar()
    {
        if (had_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_;
    std::string old_;
};

ValidationConfig
permissiveConfig(double sample_rate = 1.0)
{
    ValidationConfig v;
    v.mode = ValidateMode::Permissive;
    v.tile_sample_rate = sample_rate;
    return v;
}

ValidationConfig
strictConfig(double sample_rate = 1.0)
{
    ValidationConfig v = permissiveConfig(sample_rate);
    v.mode = ValidateMode::Strict;
    return v;
}

SimConfig
withValidation(SimConfig c, const ValidationConfig &v)
{
    c.validation = v;
    return c;
}

/** A clean one-quad scene covering most of the screen. */
Scene
cleanScene(const Mesh *quad, Vec4 tint = {0.8f, 0.3f, 0.2f, 1.0f})
{
    Scene s;
    setCamera2D(s, kW, kH);
    submitRect(s, quad, 4, 4, kW - 8, kH - 8, 0.5f, RenderState{}).tint =
        tint;
    return s;
}

} // namespace

// ------------------------------------------------------- env parsing --

TEST(ValidateEnv, UnsetMeansOff)
{
    EnvVar mode("EVRSIM_VALIDATE", nullptr);
    EnvVar rate("EVRSIM_VALIDATE_SAMPLE", nullptr);
    Result<ValidationConfig> cfg = validationFromEnvChecked();
    ASSERT_TRUE(cfg.ok());
    EXPECT_FALSE(cfg.value().enabled());
    EXPECT_EQ(cfg.value().cacheTag(), "");
}

TEST(ValidateEnv, ModesParse)
{
    EnvVar rate("EVRSIM_VALIDATE_SAMPLE", nullptr);
    {
        EnvVar mode("EVRSIM_VALIDATE", "permissive");
        Result<ValidationConfig> cfg = validationFromEnvChecked();
        ASSERT_TRUE(cfg.ok());
        EXPECT_TRUE(cfg.value().enabled());
        EXPECT_FALSE(cfg.value().strict());
        EXPECT_NE(cfg.value().cacheTag().find("permissive"),
                  std::string::npos);
    }
    {
        EnvVar mode("EVRSIM_VALIDATE", "strict");
        Result<ValidationConfig> cfg = validationFromEnvChecked();
        ASSERT_TRUE(cfg.ok());
        EXPECT_TRUE(cfg.value().strict());
    }
    {
        EnvVar mode("EVRSIM_VALIDATE", "off");
        Result<ValidationConfig> cfg = validationFromEnvChecked();
        ASSERT_TRUE(cfg.ok());
        EXPECT_FALSE(cfg.value().enabled());
    }
}

TEST(ValidateEnv, MalformedModeIsInvalidArgumentNotExit)
{
    EnvVar mode("EVRSIM_VALIDATE", "paranoid");
    Result<ValidationConfig> cfg = validationFromEnvChecked();
    ASSERT_FALSE(cfg.ok());
    EXPECT_EQ(cfg.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(cfg.status().message().find("EVRSIM_VALIDATE"),
              std::string::npos);
}

TEST(ValidateEnv, SampleRateParsesAndRejects)
{
    EnvVar mode("EVRSIM_VALIDATE", "permissive");
    {
        EnvVar rate("EVRSIM_VALIDATE_SAMPLE", "0.25");
        Result<ValidationConfig> cfg = validationFromEnvChecked();
        ASSERT_TRUE(cfg.ok());
        EXPECT_DOUBLE_EQ(cfg.value().tile_sample_rate, 0.25);
    }
    for (const char *bad : {"1.5", "-0.1", "lots", ""}) {
        EnvVar rate("EVRSIM_VALIDATE_SAMPLE", bad);
        Result<ValidationConfig> cfg = validationFromEnvChecked();
        EXPECT_FALSE(cfg.ok()) << "value '" << bad << "'";
    }
}

TEST(ValidateEnv, BenchParamsPropagateBadKnob)
{
    EnvVar mode("EVRSIM_VALIDATE", "bogus");
    Result<BenchParams> p = benchParamsFromEnvChecked();
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), ErrorCode::InvalidArgument);
}

// --------------------------------------------------- config checking --

TEST(ConfigCheck, RecoverableStatusInsteadOfExit)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    SimConfig bad = SimConfig::baseline(gpu);
    bad.gpu.screen_width = 0;
    EXPECT_EQ(bad.checkValid().code(), ErrorCode::InvalidArgument);

    SimConfig flags = SimConfig::baseline(gpu);
    flags.evr_reorder = true; // without evr_predict
    EXPECT_EQ(flags.checkValid().code(), ErrorCode::InvalidArgument);

    EXPECT_TRUE(SimConfig::evr(gpu).checkValid().ok());
}

// --------------------------------------------------- scene ingestion --

TEST(SceneAudit, CleanSceneIsClean)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    Scene s = cleanScene(&quad);
    EXPECT_TRUE(auditScene(s).ok());
    EXPECT_TRUE(validateScene(s).ok());
}

TEST(SceneAudit, CatchesEachDefectClass)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    const float nan = std::nanf("");

    { // null mesh
        Scene s = cleanScene(&quad);
        s.commands[0].mesh = nullptr;
        SceneAuditReport r = auditScene(s);
        ASSERT_EQ(r.issues.size(), 1u);
        EXPECT_EQ(r.issues[0].command, 0);
    }
    { // non-finite model matrix
        Scene s = cleanScene(&quad);
        s.commands[0].model.m[1][2] = nan;
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // non-finite tint
        Scene s = cleanScene(&quad);
        s.commands[0].tint.y = std::numeric_limits<float>::infinity();
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // index out of range
        Mesh broken = meshes::quad({1, 1, 1, 1});
        broken.indices.push_back(0);
        broken.indices.push_back(1);
        broken.indices.push_back(
            static_cast<std::uint32_t>(broken.vertices.size()) + 9);
        Scene s = cleanScene(&quad);
        s.commands[0].mesh = &broken;
        SceneAuditReport r = auditScene(s);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.issues[0].detail.find("out of range"),
                  std::string::npos);
    }
    { // index count not a triangle list
        Mesh broken = meshes::quad({1, 1, 1, 1});
        broken.indices.push_back(0);
        Scene s = cleanScene(&quad);
        s.commands[0].mesh = &broken;
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // non-finite vertex attribute
        Mesh broken = meshes::quad({1, 1, 1, 1});
        broken.vertices[0].position.z = nan;
        Scene s = cleanScene(&quad);
        s.commands[0].mesh = &broken;
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // texture slot out of range
        Scene s = cleanScene(&quad);
        s.commands[0].state.texture = 3; // nothing bound
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // sampling program without a texture
        Scene s = cleanScene(&quad);
        s.commands[0].state.program = FragmentProgram::Textured;
        s.commands[0].state.texture = -1;
        EXPECT_FALSE(auditScene(s).ok());
    }
    { // frame-level: broken camera
        Scene s = cleanScene(&quad);
        s.view.m[0][0] = nan;
        SceneAuditReport r = auditScene(s);
        ASSERT_FALSE(r.ok());
        EXPECT_TRUE(r.frameLevel());
        EXPECT_EQ(r.issues[0].command, -1);
    }
    { // frame-level: clear depth out of range
        Scene s = cleanScene(&quad);
        s.clear_depth = 2.0f;
        SceneAuditReport r = auditScene(s);
        ASSERT_FALSE(r.ok());
        EXPECT_TRUE(r.frameLevel());
    }
}

TEST(SceneSanitize, DropsOnlyOffendersAndKeepsIds)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    Scene s;
    setCamera2D(s, kW, kH);
    submitRect(s, &quad, 0, 0, 20, 20, 0.5f, RenderState{});
    submitRect(s, &quad, 20, 0, 20, 20, 0.5f, RenderState{}).mesh =
        nullptr;
    submitRect(s, &quad, 40, 0, 20, 20, 0.5f, RenderState{});

    SceneAuditReport r = auditScene(s);
    EXPECT_EQ(sanitizeScene(s, r), 1u);
    ASSERT_EQ(s.commands.size(), 2u);
    // Submission ids survive so layer assignment matches a stream that
    // never contained the offender.
    EXPECT_EQ(s.commands[0].id, 0u);
    EXPECT_EQ(s.commands[1].id, 2u);
}

TEST(SceneSanitize, BrokenCameraDropsEveryCommandAndClampssClearDepth)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    Scene s = cleanScene(&quad);
    s.view.m[2][3] = std::nanf("");
    s.clear_depth = -4.0f;
    SceneAuditReport r = auditScene(s);
    EXPECT_EQ(sanitizeScene(s, r), 1u);
    EXPECT_TRUE(s.commands.empty());
    EXPECT_EQ(s.clear_depth, 1.0f);
}

TEST(SceneSanitize, PermissiveRenderEqualsManuallyCleanedScene)
{
    // Rendering the malformed scene in permissive mode must produce the
    // exact image of a scene that never contained the bad command.
    Mesh quad = meshes::quad({1, 1, 1, 1});

    GpuSimulator dirty(withValidation(
        SimConfig::baseline(tinyGpu(kW, kH)), permissiveConfig(0.0)));
    GpuSimulator clean(SimConfig::baseline(tinyGpu(kW, kH)));
    dirty.uploadMesh(quad);

    Scene bad = cleanScene(&quad);
    submitRect(bad, &quad, 10, 10, 30, 20, 0.3f, RenderState{}).mesh =
        nullptr;
    Scene good = cleanScene(&quad);

    FrameStats stats = dirty.renderFrame(bad);
    clean.renderFrame(good);

    EXPECT_TRUE(dirty.framebuffer().equals(clean.framebuffer()));
    EXPECT_EQ(stats.validate_scene_issues, 1u);
    EXPECT_EQ(stats.validate_commands_dropped, 1u);
    EXPECT_EQ(stats.validate_violations, 0u);
}

TEST(SceneSanitize, StrictModeTurnsBadSceneIntoStatus)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});
    GpuSimulator sim(withValidation(SimConfig::baseline(tinyGpu(kW, kH)),
                                    strictConfig(0.0)));
    sim.uploadMesh(quad);

    Scene bad = cleanScene(&quad);
    bad.commands[0].tint.x = std::nanf("");
    Result<FrameStats> r = sim.tryRenderFrame(bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvalidArgument);
    EXPECT_NE(r.status().message().find("command 0"), std::string::npos);
}

// ------------------------------------------------- auditor unit tests --

TEST(Auditor, TileSamplingIsDeterministicAndRespectsBounds)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    InvariantAuditor all(permissiveConfig(1.0), gpu);
    InvariantAuditor none(permissiveConfig(0.0), gpu);
    InvariantAuditor some(permissiveConfig(0.5), gpu);
    InvariantAuditor some2(permissiveConfig(0.5), gpu);

    all.frameStart(3);
    none.frameStart(3);
    some.frameStart(3);
    some2.frameStart(3);

    int sampled = 0;
    for (int t = 0; t < gpu.tileCount(); ++t) {
        EXPECT_TRUE(all.shouldAuditTile(t));
        EXPECT_FALSE(none.shouldAuditTile(t));
        EXPECT_EQ(some.shouldAuditTile(t), some2.shouldAuditTile(t));
        sampled += some.shouldAuditTile(t) ? 1 : 0;
    }
    // Not a statistical assertion — just that 0.5 is neither of the
    // degenerate policies on this many tiles.
    EXPECT_GT(sampled, 0);
    EXPECT_LT(sampled, gpu.tileCount());
}

TEST(Auditor, BinningContainmentViolationIsRecorded)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    InvariantAuditor auditor(permissiveConfig(), gpu);
    auditor.frameStart(0);

    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(gpu.tileCount(), as);

    // A triangle wholly inside tile 0, listed in the last tile too.
    std::uint32_t p = pb.addPrimitive(
        screenTriangle({1, 1}, {6, 1}, {1, 6}, 0.5f));
    pb.append(0, {p, 0, false}, false, 4);
    pb.append(gpu.tileCount() - 1, {p, 0, false}, false, 4);

    FrameStats stats;
    auditor.checkBinning(pb, stats);
    EXPECT_EQ(stats.validate_violations, 1u);
    EXPECT_FALSE(auditor.frameClean());
    EXPECT_EQ(auditor.frameStatus().code(), ErrorCode::InvariantViolation);
}

TEST(Auditor, SecondListCompositionIsAudited)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    InvariantAuditor auditor(permissiveConfig(), gpu);
    auditor.frameStart(0);

    AddressSpace as;
    ParameterBuffer pb;
    pb.beginFrame(gpu.tileCount(), as);

    // Algorithm 1 may defer only predicted-occluded opaque WOZ
    // primitives. Seed the Second List with (a) a non-predicted entry
    // and (b) a translucent primitive.
    ShadedPrimitive woz = screenTriangle({1, 1}, {6, 1}, {1, 6}, 0.5f);
    std::uint32_t a = pb.addPrimitive(woz);
    ShadedPrimitive blend = woz;
    blend.state.blend = BlendMode::Alpha;
    std::uint32_t b = pb.addPrimitive(blend);

    pb.append(0, {a, 0, false}, true, 4);
    pb.append(0, {b, 0, true}, true, 4);

    FrameStats stats;
    auditor.checkBinning(pb, stats);
    EXPECT_EQ(stats.validate_violations, 2u);

    // A legitimate Second List entry adds nothing.
    InvariantAuditor ok_auditor(permissiveConfig(), gpu);
    ok_auditor.frameStart(0);
    ParameterBuffer pb2;
    pb2.beginFrame(gpu.tileCount(), as);
    std::uint32_t c = pb2.addPrimitive(woz);
    pb2.append(0, {c, 0, true}, true, 4);
    FrameStats clean;
    ok_auditor.checkBinning(pb2, clean);
    EXPECT_EQ(clean.validate_violations, 0u);
    EXPECT_TRUE(ok_auditor.frameClean());
}

TEST(Auditor, FvpConservativenessCatchesTooNearPrediction)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    EarlyVisibilityResolution evr(gpu.tileCount(), gpu.tile_size);
    InvariantAuditor auditor(permissiveConfig(), gpu);
    auditor.attach(nullptr, &evr);
    auditor.frameStart(0);

    std::vector<float> depth(
        static_cast<std::size_t>(gpu.tile_size) * gpu.tile_size, 0.8f);
    const int n = static_cast<int>(depth.size());
    FrameStats stats;

    // No stored prediction: vacuously conservative.
    auditor.checkFvpConservative(0, depth.data(), n, stats);
    EXPECT_EQ(stats.validate_violations, 0u);

    // Honest prediction (z_far >= true farthest depth): clean.
    evr.mutableFvpTable().storeWoz(0, 0.8f);
    auditor.checkFvpConservative(0, depth.data(), n, stats);
    EXPECT_EQ(stats.validate_violations, 0u);

    // Corrupted too-near prediction: violation, and the entry is
    // dropped so the next frame cannot predict with it.
    evr.mutableFvpTable().storeWoz(0, 0.2f);
    auditor.checkFvpConservative(0, depth.data(), n, stats);
    EXPECT_EQ(stats.validate_violations, 1u);
    EXPECT_GT(stats.degraded_tiles, 0u);
    EXPECT_FALSE(evr.fvpTable().valid(0));
}

TEST(Auditor, MispredictionMustPoisonSignature)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    RenderingElimination re(gpu.tileCount());
    InvariantAuditor auditor(permissiveConfig(), gpu);
    auditor.attach(&re, nullptr);
    auditor.frameStart(0);

    FrameStats stats;
    // Properly reported misprediction: poison took, counted as
    // degradation but no violation.
    re.tileMispredicted(2);
    auditor.checkMispredictionPoisoned(2, stats);
    EXPECT_EQ(stats.validate_violations, 0u);
    EXPECT_EQ(stats.degraded_tiles, 1u);

    // Un-poisoned misprediction (the defense silently failed): caught.
    auditor.checkMispredictionPoisoned(3, stats);
    EXPECT_EQ(stats.validate_violations, 1u);
}

TEST(Auditor, DegradeTilePoisonsSignatureAndDropsPrediction)
{
    GpuConfig gpu = tinyGpu(kW, kH);
    RenderingElimination re(gpu.tileCount());
    EarlyVisibilityResolution evr(gpu.tileCount(), gpu.tile_size);
    evr.mutableFvpTable().storeWoz(1, 0.5f);

    InvariantAuditor auditor(permissiveConfig(), gpu);
    auditor.attach(&re, &evr);
    auditor.frameStart(0);

    FrameStats stats;
    auditor.degradeTile(1, stats);
    EXPECT_EQ(stats.degraded_tiles, 1u);
    EXPECT_TRUE(re.signatureBuffer().currentPoisoned(1));
    EXPECT_FALSE(evr.fvpTable().valid(1));
}

// ------------------------------------- end-to-end identity and repair --

TEST(IdentityAudit, CleanRunsStayCleanInStrictMode)
{
    // Strict validation over several frames of a real multi-config
    // render must find nothing: the techniques are sound, and the
    // reference raster path must agree with the pipeline bit for bit.
    Mesh quad = meshes::quad({1, 1, 1, 1});
    for (SimConfig cfg :
         {SimConfig::baseline(tinyGpu(kW, kH)),
          SimConfig::renderingElimination(tinyGpu(kW, kH)),
          SimConfig::evr(tinyGpu(kW, kH))}) {
        GpuSimulator sim(withValidation(cfg, strictConfig(1.0)));
        sim.uploadMesh(quad);
        for (int f = 0; f < 4; ++f) {
            Scene s;
            setCamera2D(s, kW, kH);
            RenderState woz;
            submitRect(s, &quad, -1, -1, kW + 2, kH + 2, 0.9f, woz);
            float x = 4.0f + 3.0f * static_cast<float>(f);
            submitRect(s, &quad, x, 8, 20, 16, 0.4f, woz).tint = {
                0.9f, 0.7f, 0.1f, 1.0f};
            RenderState blend;
            blend.depth_write = false;
            blend.blend = BlendMode::Alpha;
            submitRect(s, &quad, 12, 20, 24, 12, 0.2f, blend).tint = {
                0.2f, 0.4f, 0.9f, 0.5f};
            Result<FrameStats> r = sim.tryRenderFrame(s);
            ASSERT_TRUE(r.ok()) << cfg.name << " frame " << f << ": "
                                << r.status().message();
            EXPECT_GT(r.value().validate_tile_checks, 0u);
        }
        EXPECT_EQ(sim.auditor()->totalViolations(), 0u);
    }
}

TEST(IdentityAudit, WrongSkipIsCaughtRepairedAndDegraded)
{
    // Choreograph the failure RE must never produce naturally: plant a
    // forged previous-frame signature equal to what the *next* frame
    // will hash, so RE wrongly skips tiles whose pixels changed. The
    // sampled identity audit must catch it, repair the pixels from the
    // reference path, and take the tiles out of the fast path.
    Mesh quad = meshes::quad({1, 1, 1, 1});

    auto sceneX = [&] { return cleanScene(&quad, {0.9f, 0.1f, 0.1f, 1}); };
    auto sceneY = [&] { return cleanScene(&quad, {0.1f, 0.9f, 0.1f, 1}); };

    // Learn Y's per-tile signatures with a disposable RE simulator.
    GpuSimulator probe(SimConfig::renderingElimination(tinyGpu(kW, kH)));
    probe.uploadMesh(quad);
    probe.renderFrame(sceneY());

    GpuSimulator sim(withValidation(
        SimConfig::renderingElimination(tinyGpu(kW, kH)),
        permissiveConfig(1.0)));
    sim.uploadMesh(quad);
    sim.renderFrame(sceneX());

    SignatureBuffer &sigs = sim.mutableRe()->mutableSignatureBuffer();
    const SignatureBuffer &probe_sigs = probe.re()->signatureBuffer();
    for (int t = 0; t < sigs.tileCount(); ++t)
        sigs.setPrevious(t, probe_sigs.previous(t), true);

    FrameStats stats = sim.renderFrame(sceneY());

    // The forged signatures made RE skip; the audit must have repaired
    // the image back to the true render of Y.
    GpuSimulator truth(SimConfig::baseline(tinyGpu(kW, kH)));
    truth.uploadMesh(quad);
    truth.renderFrame(sceneY());
    EXPECT_TRUE(sim.framebuffer().equals(truth.framebuffer()));
    EXPECT_GT(stats.validate_violations, 0u);
    EXPECT_GT(stats.degraded_tiles, 0u);

    // Degradation poisoned the repaired tiles' signatures, so the next
    // identical frame renders (no skip on poisoned state) and is clean.
    FrameStats next = sim.renderFrame(sceneY());
    EXPECT_TRUE(sim.framebuffer().equals(truth.framebuffer()));
    EXPECT_EQ(next.validate_violations, 0u);
}

TEST(IdentityAudit, StrictModeFailsTheFrameOnSeededViolation)
{
    Mesh quad = meshes::quad({1, 1, 1, 1});

    GpuSimulator probe(SimConfig::renderingElimination(tinyGpu(kW, kH)));
    probe.uploadMesh(quad);
    probe.renderFrame(cleanScene(&quad, {0.1f, 0.9f, 0.1f, 1}));

    GpuSimulator sim(withValidation(
        SimConfig::renderingElimination(tinyGpu(kW, kH)),
        strictConfig(1.0)));
    sim.uploadMesh(quad);
    ASSERT_TRUE(
        sim.tryRenderFrame(cleanScene(&quad, {0.9f, 0.1f, 0.1f, 1})).ok());

    SignatureBuffer &sigs = sim.mutableRe()->mutableSignatureBuffer();
    for (int t = 0; t < sigs.tileCount(); ++t)
        sigs.setPrevious(t, probe.re()->signatureBuffer().previous(t),
                         true);

    Result<FrameStats> r =
        sim.tryRenderFrame(cleanScene(&quad, {0.1f, 0.9f, 0.1f, 1}));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::InvariantViolation);
}

// ----------------------------------------------------- crash handler --

using CrashHandlerDeathTest = ::testing::Test;

TEST(CrashHandlerDeathTest, PrintsActiveContextAndReRaises)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            installCrashHandler();
            crashContextSetRun("ata", "evr");
            crashContextSetFrame(12);
            crashContextSetTile(77);
            std::abort();
        },
        "evrsim crash: SIGABRT(.|\\n)*active run: ata/evr(.|\\n)*"
        "frame: 12(.|\\n)*tile: 77");
}

TEST(CrashHandlerDeathTest, ClearedContextReportsNone)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            installCrashHandler();
            crashContextSetRun("ata", "evr");
            crashContextClear();
            std::abort();
        },
        "active run: \\(none recorded on this thread\\)");
}
