/**
 * @file
 * A hybrid 3D scene under a HUD — the paper's headline scenario for the
 * EVR-improved Rendering Elimination: animated WOZ geometry keeps
 * moving *behind* an opaque NWOZ HUD, so plain RE can never match those
 * tiles' signatures, while EVR excludes the hidden primitives and skips
 * the HUD tiles every frame.
 *
 * Demonstrates: 3D camera + screen-space overlay commands, the
 * RE/EVR/baseline comparison workflow, per-frame statistics.
 */
#include <cstdio>

#include "driver/gpu_simulator.hpp"
#include "scene/animation.hpp"
#include "scene/camera.hpp"

using namespace evrsim;

namespace {

struct HudGame {
    Mesh sky = meshes::sphere(8, 12, {0.3f, 0.4f, 0.6f, 1.0f});
    Mesh ground = meshes::grid(16, 16, {1, 1, 1, 1}, 0.01f, 9);
    Mesh tank = meshes::box({0.7f, 0.25f, 0.2f, 1.0f});
    Mesh hud_bar = meshes::quad({0.12f, 0.12f, 0.16f, 1.0f});
    Texture ground_tex{TextureKind::Noise, 128,
                       {0.3f, 0.4f, 0.25f, 1.0f},
                       {0.5f, 0.45f, 0.3f, 1.0f},
                       21, 24};

    void
    upload(GpuSimulator &sim)
    {
        sim.uploadMesh(sky);
        sim.uploadMesh(ground);
        sim.uploadMesh(tank);
        sim.uploadMesh(hud_bar);
        sim.registerTexture(ground_tex);
    }

    Scene
    frame(int i, int width, int height) const
    {
        Scene scene;
        setCamera3D(scene, {0.0f, 5.0f, 14.0f}, {0.0f, 1.0f, 0.0f}, 55.0f,
                    static_cast<float>(width) / height);
        scene.textures.push_back(&ground_tex);

        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;

        scene.submit(&sky, Mat4::scale({120, 120, 120}), woz);

        RenderState textured = woz;
        textured.program = FragmentProgram::Textured;
        textured.texture = 0;
        scene.submit(&ground,
                     Mat4::scale({60, 1, 60}) * Mat4::rotateX(-1.5708f),
                     textured);

        // Tanks patrol the whole field — including the strip that ends
        // up underneath the HUD.
        for (int t = 0; t < 4; ++t) {
            Vec3 p = anim::orbitXZ({0, 0.5f, 6.0f}, 5.0f + t, 140.0f + 9 * t,
                                   i, t * 1.7f);
            RenderState tank_state = woz;
            tank_state.cull_backface = true;
            scene.submit(&tank,
                         Mat4::translate(p) *
                             Mat4::rotateY(anim::spin(120.0f, i, t)) *
                             Mat4::scale({1.6f, 0.9f, 2.4f}),
                         tank_state);
        }

        // Opaque HUD bar across the bottom third (screen-space overlay).
        RenderState hud;
        hud.depth_test = false;
        hud.depth_write = false;
        DrawCommand &bar = scene.submit(
            &hud_bar,
            anim::spriteAt(width * 0.5f, height - height * 0.16f,
                           static_cast<float>(width), height * 0.32f, 0.02f),
            hud);
        bar.screen_space = true;
        return scene;
    }
};

void
runConfig(const SimConfig &config, int frames, std::uint32_t &crc)
{
    GpuSimulator sim(config);
    HudGame game;
    game.upload(sim);
    for (int i = 0; i < frames; ++i)
        sim.renderFrame(game.frame(i, config.gpu.screen_width,
                                   config.gpu.screen_height));

    const FrameStats &t = sim.totals();
    std::printf("[%-8s] cycles=%11llu  tiles skipped=%llu/%llu (%.1f%%)  "
                "shaded=%llu\n",
                config.name.c_str(),
                static_cast<unsigned long long>(t.totalCycles()),
                static_cast<unsigned long long>(t.tiles_skipped_re),
                static_cast<unsigned long long>(t.tiles_total),
                100.0 * t.tiles_skipped_re / t.tiles_total,
                static_cast<unsigned long long>(t.fragments_shaded));
    crc = sim.framebuffer().contentCrc();
}

} // namespace

int
main()
{
    GpuConfig gpu;
    gpu.screen_width = 480;
    gpu.screen_height = 320;
    const int kFrames = 24;

    std::printf("hud_game: tanks patrolling under an opaque HUD, %d frames"
                "\n\n",
                kFrames);

    std::uint32_t base_crc, re_crc, evr_crc;
    runConfig(SimConfig::baseline(gpu), kFrames, base_crc);
    runConfig(SimConfig::renderingElimination(gpu), kFrames, re_crc);
    runConfig(SimConfig::evr(gpu), kFrames, evr_crc);

    if (base_crc != re_crc || base_crc != evr_crc) {
        std::printf("\nERROR: outputs differ!\n");
        return 1;
    }
    std::printf("\nall outputs identical (crc %08x). RE cannot skip the "
                "HUD rows — the hidden tanks keep changing their "
                "signatures — while EVR excludes them and skips those "
                "tiles every frame.\n",
                base_crc);
    return 0;
}
