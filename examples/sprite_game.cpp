/**
 * @file
 * A 2D painter's-algorithm game with a modal menu — the NWOZ/layer side
 * of EVR: no Z Buffer is ever written, visibility is implicit in draw
 * order, and the Layer Generator Table + Layer Buffer provide the depth
 * surrogate that lets EVR skip menu-covered tiles while sprites keep
 * animating underneath.
 *
 * Demonstrates: 2D pixel-space camera, layered opaque/translucent
 * sprites, per-frame scene construction, technique comparison.
 */
#include <cstdio>

#include "driver/gpu_simulator.hpp"
#include "scene/animation.hpp"
#include "scene/camera.hpp"

using namespace evrsim;

namespace {

RenderState
sprite2d(BlendMode blend = BlendMode::Opaque, int texture = -1)
{
    RenderState s;
    s.depth_test = false;
    s.depth_write = false;
    s.blend = blend;
    s.program = texture >= 0 ? FragmentProgram::Textured
                             : FragmentProgram::Flat;
    s.texture = texture;
    return s;
}

struct SpriteGame {
    Mesh quad = meshes::quad({1, 1, 1, 1});
    Texture bg_tex{TextureKind::Noise, 256,
                   {0.1f, 0.2f, 0.3f, 1.0f},
                   {0.2f, 0.35f, 0.45f, 1.0f},
                   5, 32};

    void
    upload(GpuSimulator &sim)
    {
        sim.uploadMesh(quad);
        sim.registerTexture(bg_tex);
    }

    Scene
    frame(int i, int w, int h) const
    {
        Scene scene;
        setCamera2D(scene, w, h);
        scene.textures.push_back(&bg_tex);

        // Layer 1: background.
        scene.submit(&quad, anim::spriteAt(w / 2.0f, h / 2.0f,
                                           static_cast<float>(w),
                                           static_cast<float>(h), 0.9f),
                     sprite2d(BlendMode::Opaque, 0));

        // Layer 2: a dozen bouncing opaque sprites.
        for (int s = 0; s < 12; ++s) {
            float x = anim::oscillate(w * (0.1f + 0.07f * s), 40.0f, 60.0f,
                                      i, s * 0.9f);
            float y = anim::pingPong(20.0f, h - 40.0f, 45.0f + 3 * s, i + s);
            DrawCommand &cmd = scene.submit(
                &quad, anim::spriteAt(x, y, 26, 26, 0.5f), sprite2d());
            cmd.tint = {0.4f + 0.05f * s, 0.9f - 0.05f * s, 0.4f, 1.0f};
        }

        // Layer 3: a translucent glow following the first sprite.
        DrawCommand &glow = scene.submit(
            &quad,
            anim::spriteAt(anim::oscillate(w * 0.1f, 40.0f, 60.0f, i), 60,
                           60, 60, 0.4f),
            sprite2d(BlendMode::Alpha));
        glow.tint = {1.0f, 0.9f, 0.4f, 0.35f};

        // Layer 4: a modal menu covering most of the screen from frame
        // 8 on — everything underneath keeps animating, invisibly.
        if (i >= 8) {
            DrawCommand &panel = scene.submit(
                &quad,
                anim::spriteAt(w / 2.0f, h / 2.0f, w * 0.8f, h * 0.8f,
                               0.1f),
                sprite2d());
            panel.tint = {0.85f, 0.82f, 0.75f, 1.0f};
            for (int b = 0; b < 3; ++b) {
                DrawCommand &button = scene.submit(
                    &quad,
                    anim::spriteAt(w / 2.0f, h * (0.35f + 0.15f * b),
                                   w * 0.5f, h * 0.1f, 0.05f),
                    sprite2d());
                button.tint = {0.3f, 0.5f + 0.15f * b, 0.8f, 1.0f};
            }
        }
        return scene;
    }
};

} // namespace

int
main()
{
    GpuConfig gpu;
    gpu.screen_width = 400;
    gpu.screen_height = 240;
    const int kFrames = 20;

    std::printf("sprite_game: 2D painter's algorithm with a modal menu "
                "from frame 8\n\n");

    std::uint32_t reference = 0;
    for (const SimConfig &config :
         {SimConfig::baseline(gpu), SimConfig::renderingElimination(gpu),
          SimConfig::evr(gpu)}) {
        GpuSimulator sim(config);
        SpriteGame game;
        game.upload(sim);

        std::uint64_t menu_phase_skips = 0, menu_phase_tiles = 0;
        for (int i = 0; i < kFrames; ++i) {
            FrameStats f = sim.renderFrame(
                game.frame(i, gpu.screen_width, gpu.screen_height));
            if (i >= 10) { // steady state with the menu up
                menu_phase_skips += f.tiles_skipped_re;
                menu_phase_tiles += f.tiles_total;
            }
        }

        const FrameStats &t = sim.totals();
        std::printf("[%-8s] cycles=%10llu  menu-phase skips=%llu/%llu  "
                    "shaded=%llu\n",
                    config.name.c_str(),
                    static_cast<unsigned long long>(t.totalCycles()),
                    static_cast<unsigned long long>(menu_phase_skips),
                    static_cast<unsigned long long>(menu_phase_tiles),
                    static_cast<unsigned long long>(t.fragments_shaded));

        std::uint32_t crc = sim.framebuffer().contentCrc();
        if (reference == 0) {
            reference = crc;
        } else if (crc != reference) {
            std::printf("ERROR: output differs!\n");
            return 1;
        }
    }

    std::printf("\nall outputs identical. With the menu up, EVR skips the "
                "covered tiles (the sprites underneath are excluded from "
                "the signatures); RE keeps re-rendering them.\n");
    return 0;
}
