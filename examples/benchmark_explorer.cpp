/**
 * @file
 * Command-line explorer for the Table III benchmark suite: run any
 * workload under any configuration and print the per-frame and total
 * statistics the figures are built from.
 *
 *   benchmark_explorer [alias] [config] [frames]
 *     alias:  300 ata csn mst ter tib abi arm ale ccs cde coc ctr dpe
 *             hay hop mto red wmw wog       (default: ccs)
 *     config: baseline | re | evr | evr-reorder | evr-filter | oracle-z | z-prepass
 *             (default: evr)
 *     frames: positive integer (default: 12)
 *
 * Set EVRSIM_DUMP_PPM=<path> to write the final frame as a PPM image.
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "driver/experiment.hpp"
#include "workloads/registry.hpp"

using namespace evrsim;

namespace {

SimConfig
configByName(const std::string &name, const GpuConfig &gpu)
{
    if (name == "baseline")
        return SimConfig::baseline(gpu);
    if (name == "re")
        return SimConfig::renderingElimination(gpu);
    if (name == "evr")
        return SimConfig::evr(gpu);
    if (name == "evr-reorder")
        return SimConfig::evrReorderOnly(gpu);
    if (name == "evr-filter")
        return SimConfig::evrFilterOnly(gpu);
    if (name == "oracle-z")
        return SimConfig::oracleZ(gpu);
    if (name == "z-prepass")
        return SimConfig::zPrepass(gpu);
    fatal("unknown config '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string alias = argc > 1 ? argv[1] : "ccs";
    std::string config_name = argc > 2 ? argv[2] : "evr";
    int frames = argc > 3 ? std::atoi(argv[3]) : 12;
    if (frames <= 0)
        fatal("frames must be positive");

    BenchParams params = benchParamsFromEnv();
    GpuConfig gpu = params.gpuConfig();
    SimConfig config = configByName(config_name, gpu);

    auto workload = workloads::make(alias, gpu.screen_width,
                                    gpu.screen_height);
    if (!workload)
        fatal("unknown benchmark '%s'", alias.c_str());

    Workload::Info info = workload->info();
    std::printf("%s (%s, %s, %s) under %s, %dx%d, %d frames\n\n",
                info.alias.c_str(), info.title.c_str(), info.genre.c_str(),
                info.is_3d ? "3D" : "2D", config.name.c_str(),
                gpu.screen_width, gpu.screen_height, frames);

    GpuSimulator sim(config);
    workload->setup(sim);

    std::printf("%5s %12s %10s %10s %10s %8s\n", "frame", "cycles",
                "frags-shaded", "ez-kills", "skipped", "pred-occ");
    for (int i = 0; i < frames; ++i) {
        FrameStats f = sim.renderFrame(workload->frame(i));
        std::printf("%5d %12llu %10llu %10llu %7llu/%-3llu %8llu\n", i,
                    static_cast<unsigned long long>(f.totalCycles()),
                    static_cast<unsigned long long>(f.fragments_shaded),
                    static_cast<unsigned long long>(f.early_z_kills),
                    static_cast<unsigned long long>(f.tiles_skipped_re),
                    static_cast<unsigned long long>(f.tiles_total),
                    static_cast<unsigned long long>(
                        f.prims_predicted_occluded));
    }

    const FrameStats &t = sim.totals();
    EnergyBreakdown e = sim.energyOf(t);
    std::printf("\ntotals: %llu cycles (%llu geometry + %llu raster), "
                "%.1f uJ energy\n",
                static_cast<unsigned long long>(t.totalCycles()),
                static_cast<unsigned long long>(t.geometry_cycles),
                static_cast<unsigned long long>(t.raster_cycles),
                e.total() / 1000.0);
    std::printf("        %llu fragments shaded (%.2f/pixel), %llu of %llu "
                "tiles skipped\n",
                static_cast<unsigned long long>(t.fragments_shaded),
                t.shadedFragmentsPerPixel(
                    static_cast<std::uint64_t>(gpu.screen_width) *
                    gpu.screen_height * frames),
                static_cast<unsigned long long>(t.tiles_skipped_re),
                static_cast<unsigned long long>(t.tiles_total));
    std::printf("        final image crc %08x\n",
                sim.framebuffer().contentCrc());

    if (const char *dump = std::getenv("EVRSIM_DUMP_PPM")) {
        if (sim.framebuffer().writePpm(dump))
            std::printf("        final frame written to %s\n", dump);
        else
            warn("could not write %s", dump);
    }
    return 0;
}
