/**
 * @file
 * Quickstart: render a small animated scene under the Baseline, RE and
 * EVR configurations, verify the outputs are identical, and print the
 * headline statistics.
 *
 * This demonstrates the complete public API surface:
 *   GpuConfig / SimConfig  -> configure the modelled GPU
 *   GpuSimulator           -> upload resources, render frames
 *   FrameStats / energyOf  -> inspect what happened
 */
#include <cstdio>

#include "driver/gpu_simulator.hpp"
#include "scene/animation.hpp"
#include "scene/camera.hpp"

using namespace evrsim;

namespace {

/** A tiny hand-rolled workload: a spinning cube behind a HUD bar. */
struct DemoScene {
    Mesh ground = meshes::grid(8, 8, {0.4f, 0.5f, 0.3f, 1.0f}, 0.0f, 1);
    Mesh cube = meshes::box({0.8f, 0.3f, 0.2f, 1.0f});
    Mesh backdrop = meshes::quad({0.2f, 0.3f, 0.6f, 1.0f});
    Mesh hud_bar = meshes::quad({0.15f, 0.15f, 0.2f, 1.0f});
    Texture checker{TextureKind::Checker, 64,
                    {0.9f, 0.9f, 0.8f, 1.0f},
                    {0.2f, 0.25f, 0.2f, 1.0f},
                    7, 8};

    void
    upload(GpuSimulator &sim)
    {
        sim.uploadMesh(ground);
        sim.uploadMesh(cube);
        sim.uploadMesh(backdrop);
        sim.uploadMesh(hud_bar);
        sim.registerTexture(checker);
    }

    Scene
    frame(int i, int width, int height) const
    {
        Scene scene;
        setCamera3D(scene, {0.0f, 3.0f, 8.0f}, {0.0f, 1.0f, 0.0f}, 55.0f,
                    static_cast<float>(width) / height);
        scene.textures.push_back(&checker);

        RenderState woz;
        woz.depth_test = true;
        woz.depth_write = true;

        // Far-to-near order: backdrop, ground, spinning cube.
        scene.submit(&backdrop,
                     Mat4::translate({0, 0, -30.0f}) *
                         Mat4::scale({120.0f, 70.0f, 1.0f}),
                     woz);

        RenderState textured = woz;
        textured.program = FragmentProgram::Textured;
        textured.texture = 0;
        scene.submit(&ground,
                     Mat4::scale({30.0f, 1.0f, 30.0f}) *
                         Mat4::rotateX(-1.5708f),
                     textured);

        RenderState cube_state = woz;
        cube_state.cull_backface = true;
        scene.submit(&cube,
                     Mat4::translate({0.0f, 1.2f, 0.0f}) *
                         Mat4::rotateY(anim::spin(120.0f, i)) *
                         Mat4::scale({2.2f, 2.2f, 2.2f}),
                     cube_state);

        // Opaque HUD bar (NWOZ, painter's algorithm).
        RenderState hud;
        hud.depth_test = false;
        hud.depth_write = false;
        scene.submit(&hud_bar,
                     anim::spriteAt(width * 0.5f, height - 24.0f,
                                    static_cast<float>(width), 48.0f, 0.0f),
                     hud);
        return scene;
    }
};

} // namespace

int
main()
{
    GpuConfig gpu;
    gpu.screen_width = 320;
    gpu.screen_height = 240;

    const int kFrames = 12;

    std::printf("quickstart: %dx%d, %d frames, 3 configurations\n\n",
                gpu.screen_width, gpu.screen_height, kFrames);

    std::uint32_t reference_crc = 0;
    for (const SimConfig &config :
         {SimConfig::baseline(gpu), SimConfig::renderingElimination(gpu),
          SimConfig::evr(gpu)}) {
        GpuSimulator sim(config);
        DemoScene demo;
        demo.upload(sim);

        for (int i = 0; i < kFrames; ++i)
            sim.renderFrame(demo.frame(i, gpu.screen_width,
                                       gpu.screen_height));

        const FrameStats &t = sim.totals();
        EnergyBreakdown e = sim.energyOf(t);

        std::printf("[%-8s] cycles=%10llu (geom %llu + raster %llu)\n",
                    config.name.c_str(),
                    static_cast<unsigned long long>(t.totalCycles()),
                    static_cast<unsigned long long>(t.geometry_cycles),
                    static_cast<unsigned long long>(t.raster_cycles));
        std::printf("           shaded frags=%llu  early-z kills=%llu  "
                    "tiles skipped=%llu/%llu\n",
                    static_cast<unsigned long long>(t.fragments_shaded),
                    static_cast<unsigned long long>(t.early_z_kills),
                    static_cast<unsigned long long>(t.tiles_skipped_re),
                    static_cast<unsigned long long>(t.tiles_total));
        std::printf("           energy=%.1f uJ  (dram %.1f, datapath %.1f)\n",
                    e.total() / 1000.0, e.dram_nj / 1000.0,
                    e.datapath_nj / 1000.0);

        std::uint32_t crc = sim.framebuffer().contentCrc();
        std::printf("           final image crc=%08x\n\n", crc);

        if (reference_crc == 0)
            reference_crc = crc;
        else if (crc != reference_crc) {
            std::printf("ERROR: output differs from baseline!\n");
            return 1;
        }
    }

    std::printf("all configurations produced bit-identical output\n");
    return 0;
}
